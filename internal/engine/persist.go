package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary table snapshot format. Columnar layout mirrors the in-memory
// representation, so load cost is one allocation per column plus a
// sequential read — the shape an embedded analytical store wants.
//
//	magic   "SDB1" (4 bytes)
//	name    string
//	rows    uvarint
//	version uvarint ("SDB2" only: the table's mutation version)
//	ncols   uvarint
//	per column:
//	    name     string
//	    type     byte
//	    nulls    uvarint count, then that many uvarint positions
//	    payload  type-specific (see writeColumn)
//	crc32   IEEE checksum of everything before it (4 bytes, big endian)
//
// Strings are uvarint length + bytes. All integers are uvarints or
// fixed little-endian 8-byte values inside payloads.
//
// Two magics share the format. "SDB1" is the version-free layout; it
// is what ContentHash digests, so table bytes with equal contents hash
// equal regardless of how many mutations produced them. "SDB2" adds
// the mutation version, which durable snapshots need: a restored table
// must resume the version sequence so WAL replay (keyed by pre-append
// version) and fingerprint continuity both work across restarts.
// ReadTable accepts either magic.

const (
	tableMagic   = "SDB1"
	tableMagicV2 = "SDB2"
)

// WriteTable serializes the table to w in the version-free "SDB1"
// layout. This is the byte-stable form ContentHash digests; durable
// snapshots use WriteTableSnapshot, which also records the mutation
// version.
func WriteTable(w io.Writer, t *Table) error {
	return writeTable(w, t, false)
}

// WriteTableSnapshot serializes the table in the "SDB2" layout, which
// additionally persists the table's mutation version so a restore
// resumes the version sequence instead of restarting it at zero.
func WriteTableSnapshot(w io.Writer, t *Table) error {
	return writeTable(w, t, true)
}

func writeTable(w io.Writer, t *Table, withVersion bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()

	// Write/read symmetry: ReadTable rejects ncols == 0 (a table that
	// can hold no values is corruption, not data), so refusing to emit
	// one here keeps every written snapshot readable.
	if len(t.cols) == 0 {
		return fmt.Errorf("engine: cannot snapshot zero-column table %q", t.name)
	}

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	magic := tableMagic
	if withVersion {
		magic = tableMagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	writeString(bw, t.name)
	writeUvarint(bw, uint64(t.rows))
	if withVersion {
		writeUvarint(bw, t.version.Load())
	}
	writeUvarint(bw, uint64(len(t.cols)))
	for _, col := range t.cols {
		if err := writeColumn(bw, col); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("engine: writing snapshot checksum: %w", err)
	}
	return nil
}

// ReadTable deserializes a table written by WriteTable, verifying the
// checksum. The whole snapshot is buffered first so the checksum can
// be validated before any parsing work trusts the payload.
func ReadTable(r io.Reader) (*Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("engine: reading snapshot: %w", err)
	}
	if len(data) < len(tableMagic)+4 {
		return nil, fmt.Errorf("engine: snapshot truncated (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(sum) {
		return nil, fmt.Errorf("engine: snapshot checksum mismatch (corrupt file?)")
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("engine: reading snapshot magic: %w", err)
	}
	if string(magic) != tableMagic && string(magic) != tableMagicV2 {
		return nil, fmt.Errorf("engine: not a table snapshot (magic %q)", magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	rows, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	// SDB2 persists the mutation version; SDB1 predates it, so a legacy
	// snapshot restores at version 0 (its pre-durability behavior).
	var version uint64
	if string(magic) == tableMagicV2 {
		if version, err = readUvarint(br); err != nil {
			return nil, err
		}
	}
	ncols, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<20 {
		return nil, fmt.Errorf("engine: snapshot has implausible column count %d", ncols)
	}
	// Plausibility before allocation: every column stores at least one
	// byte per row (8 for numerics, >= 1 per dictionary code), so a
	// declared row or column count the payload cannot possibly back is
	// corruption — reject it instead of allocating attacker-controlled
	// amounts of memory.
	if rows > uint64(len(payload)) {
		return nil, fmt.Errorf("engine: snapshot declares %d rows in a %d-byte payload", rows, len(payload))
	}
	if ncols > uint64(len(payload)) {
		return nil, fmt.Errorf("engine: snapshot declares %d columns in a %d-byte payload", ncols, len(payload))
	}
	t := &Table{name: name, id: tableIDs.Add(1), rows: int(rows), byName: make(map[string]int, ncols)}
	t.version.Store(version)
	for i := 0; i < int(ncols); i++ {
		col, err := readColumn(br, int(rows))
		if err != nil {
			return nil, err
		}
		if _, dup := t.byName[col.Name()]; dup {
			return nil, fmt.Errorf("engine: snapshot has duplicate column %q", col.Name())
		}
		t.byName[col.Name()] = i
		t.cols = append(t.cols, col)
	}
	return t, nil
}

func writeColumn(w *bufio.Writer, col Column) error {
	writeString(w, col.Name())
	_ = w.WriteByte(byte(col.Type()))
	// Null positions.
	var positions []int
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			positions = append(positions, i)
		}
	}
	writeUvarint(w, uint64(len(positions)))
	for _, p := range positions {
		writeUvarint(w, uint64(p))
	}
	switch c := col.(type) {
	case *IntColumn:
		for _, v := range c.vals {
			writeU64(w, uint64(v))
		}
	case *FloatColumn:
		for _, v := range c.vals {
			writeU64(w, math.Float64bits(v))
		}
	case *TimeColumn:
		for _, v := range c.vals {
			writeU64(w, uint64(v))
		}
	case *StringColumn:
		writeUvarint(w, uint64(len(c.dict)))
		for _, s := range c.dict {
			writeString(w, s)
		}
		for _, code := range c.codes {
			writeUvarint(w, uint64(uint32(code)))
		}
	default:
		return fmt.Errorf("engine: cannot snapshot column kind %T", col)
	}
	return nil
}

func readColumn(r *bufio.Reader, rows int) (Column, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	tb, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("engine: reading column type: %w", err)
	}
	typ := Type(tb)
	nNulls, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if int(nNulls) > rows {
		return nil, fmt.Errorf("engine: column %q has %d nulls for %d rows", name, nNulls, rows)
	}
	var nulls nullBitmap
	for i := 0; i < int(nNulls); i++ {
		p, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if int(p) >= rows {
			return nil, fmt.Errorf("engine: column %q null position %d out of range", name, p)
		}
		nulls.set(int(p))
	}
	switch typ {
	case TypeInt, TypeTime:
		vals := make([]int64, rows)
		for i := range vals {
			u, err := readU64(r)
			if err != nil {
				return nil, err
			}
			vals[i] = int64(u)
		}
		if typ == TypeInt {
			return &IntColumn{name: name, vals: vals, nulls: nulls}, nil
		}
		return &TimeColumn{name: name, vals: vals, nulls: nulls}, nil
	case TypeFloat:
		vals := make([]float64, rows)
		for i := range vals {
			u, err := readU64(r)
			if err != nil {
				return nil, err
			}
			vals[i] = math.Float64frombits(u)
		}
		return &FloatColumn{name: name, vals: vals, nulls: nulls}, nil
	case TypeString:
		dictLen, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if dictLen > uint64(rows)+1 {
			return nil, fmt.Errorf("engine: column %q dictionary larger than row count", name)
		}
		col := NewStringColumn(name)
		for i := 0; i < int(dictLen); i++ {
			s, err := readString(r)
			if err != nil {
				return nil, err
			}
			col.dict = append(col.dict, s)
			col.index[s] = int32(i)
		}
		col.codes = make([]int32, rows)
		for i := range col.codes {
			u, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			code := int32(uint32(u))
			if code >= int32(dictLen) && code != -1 {
				return nil, fmt.Errorf("engine: column %q code %d out of dictionary range", name, code)
			}
			col.codes[i] = code
		}
		col.nulls = nulls
		return col, nil
	default:
		return nil, fmt.Errorf("engine: unknown column type %d in snapshot", tb)
	}
}

// --- primitive encoders ---

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("engine: reading snapshot varint: %w", err)
	}
	return v, nil
}

func writeU64(w *bufio.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, _ = w.Write(buf[:])
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("engine: reading snapshot value: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("engine: snapshot string of %d bytes is implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("engine: reading snapshot string: %w", err)
	}
	return string(buf), nil
}
