package engine

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// PartialStore is the engine's incremental-execution cache: a
// content-addressed, size-bounded LRU of per-chunk aggregation partials.
// Entries are keyed by (chunk content hash, chunk position, plan
// signature), so a hit means "this exact grid cell, holding these exact
// rows, was already aggregated under this exact plan" — reuse is always
// byte-safe, and no invalidation is ever needed: the table is
// append-only and the chunk grid is absolute, so a sealed cell's
// contents (and therefore its key) can never change. Appending rows
// only adds new cells; a query after an append reuses every sealed
// cell's partials and scans just the tail plus the new cells, making
// query-after-append cost O(delta), not O(table).
//
// The same property gives cross-table and cross-process sharing for
// free: two replicas that loaded identical data produce identical chunk
// hashes, so a worker's store primed before an append keeps serving the
// sealed prefix after it.
type PartialStore struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*psEntry
	lru     *list.List // front = most recently used
	bytes   int64

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	rowsReused  atomic.Int64
	rowsScanned atomic.Int64
}

// psEntry is one cached chunk: the partials of every grouping set of
// one plan over one sealed grid cell.
type psEntry struct {
	key      string
	partials []*Partial
	size     int64
	elem     *list.Element
}

// DefaultPartialStoreBytes bounds the store when no budget is given.
const DefaultPartialStoreBytes = 256 << 20

// NewPartialStore builds a store bounded to maxBytes of estimated
// partial state (<= 0 selects DefaultPartialStoreBytes).
func NewPartialStore(maxBytes int64) *PartialStore {
	if maxBytes <= 0 {
		maxBytes = DefaultPartialStoreBytes
	}
	return &PartialStore{
		maxBytes: maxBytes,
		entries:  make(map[string]*psEntry),
		lru:      list.New(),
	}
}

// get returns the cached partials for key. Returned partials are shared
// and must never be mutated — callers merge FROM them into fresh
// accumulators, never INTO them.
func (s *PartialStore) get(key string) ([]*Partial, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.partials, true
}

// put stores the partials for key, evicting least-recently-used entries
// until the budget holds again. Oversized single entries are still
// admitted, mirroring the view cache's policy.
func (s *PartialStore) put(key string, partials []*Partial) {
	e := &psEntry{key: key, partials: partials, size: partialsSize(partials)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return // racing scan of the same chunk already stored it
	}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += e.size
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		tail := s.lru.Back()
		victim := tail.Value.(*psEntry)
		s.lru.Remove(tail)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.evictions.Add(1)
	}
}

// Purge drops every entry.
func (s *PartialStore) Purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*psEntry)
	s.lru.Init()
	s.bytes = 0
}

// PartialStoreStats is a point-in-time snapshot of store effectiveness.
type PartialStoreStats struct {
	// Hits and Misses count sealed-chunk lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to stay under the byte budget.
	Evictions int64 `json:"evictions"`
	// RowsReused counts rows whose aggregation was served from cached
	// chunk partials; RowsScanned counts rows the incremental path
	// actually re-scanned (delta rows, unsealed tails, and cold misses).
	// Their ratio is the delta-reuse ratio surfaced in /api/stats.
	RowsReused  int64 `json:"rowsReused"`
	RowsScanned int64 `json:"rowsScanned"`
	// Entries and Bytes describe the current contents.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// ReuseRatio returns RowsReused / (RowsReused + RowsScanned), the
// fraction of aggregated rows that never had to be re-scanned.
func (st PartialStoreStats) ReuseRatio() float64 {
	total := st.RowsReused + st.RowsScanned
	if total == 0 {
		return 0
	}
	return float64(st.RowsReused) / float64(total)
}

// Stats snapshots the store counters.
func (s *PartialStore) Stats() PartialStoreStats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return PartialStoreStats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		RowsReused:  s.rowsReused.Load(),
		RowsScanned: s.rowsScanned.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// partialsSize estimates the heap footprint of a chunk's partials.
func partialsSize(partials []*Partial) int64 {
	const accSize = 96 // AccState struct + slice header share
	var n int64
	for _, p := range partials {
		n += 128
		for _, c := range p.Cols {
			n += int64(len(c)) + 24
		}
		for _, g := range p.Groups {
			n += 48
			for _, k := range g.Key {
				n += 48 + int64(len(k.S))
			}
			for _, a := range g.Accs {
				n += accSize + int64(4*(len(a.Sum.Digits)+len(a.SumSq.Digits)))
			}
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Plan signature

// PlanSignature digests everything about a query that determines a
// chunk's partial state besides the rows themselves: predicate,
// sampling parameters, grouping structure, bin widths, and aggregate
// list. Row range, table identity, and parallelism are deliberately
// absent — the row position travels in the chunk key, the chunk hash
// covers the data, and partials are partition-invariant. The service
// layer reuses this digest (plus table fingerprint and row range) as
// its execution-cache key, so the two caches agree on what "same plan"
// means.
func PlanSignature(q *Query, gsets []GroupingSet) string {
	var b strings.Builder
	b.Grow(256)
	if q.Where != nil {
		b.WriteString(q.Where.String())
	}
	b.WriteByte('\n')
	b.WriteString(strconv.FormatFloat(q.SampleFraction, 'g', -1, 64))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(q.SampleSeed, 10))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(q.SampleBase))
	b.WriteByte('\n')
	// NUL separators everywhere a field could itself contain the
	// neighboring punctuation (column names come from CSV headers and
	// may hold commas or spaces): two different plans must never
	// serialize to the same signature.
	for _, gs := range gsets {
		b.WriteString("set")
		for _, by := range gs.By {
			b.WriteByte(0)
			b.WriteString(by)
		}
		if len(gs.BinWidths) > 0 {
			cols := make([]string, 0, len(gs.BinWidths))
			for c := range gs.BinWidths {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				b.WriteString("\x00bin\x00")
				b.WriteString(c)
				b.WriteByte(0)
				b.WriteString(strconv.FormatFloat(gs.BinWidths[c], 'g', -1, 64))
			}
		}
		b.WriteByte('\n')
		for _, a := range gs.Aggs {
			b.WriteString(a.Func.String())
			b.WriteByte(0)
			b.WriteString(a.Column)
			b.WriteByte(0)
			b.WriteString(a.Alias)
			if a.Filter != nil {
				b.WriteString("\x00FILTER\x00")
				b.WriteString(a.Filter.String())
			}
			b.WriteByte('\n')
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// ---------------------------------------------------------------------
// Incremental (chunked) execution

// errChunkPathNA reports that the incremental path cannot serve a query
// (no store installed, or the scanned range contains no sealed cell);
// callers fall back to the direct scan.
var errChunkPathNA = errors.New("engine: chunk-partial path not applicable")

// chunkSeg is one contiguous piece of a chunked scan: either a sealed
// grid cell (key != "", cacheable) or an unaligned remainder (key ==
// "", always scanned, never stored).
type chunkSeg struct {
	lo, hi   int
	key      string
	partials []*Partial
}

// runPartialsChunked executes (q, gsets) as a merge of per-chunk
// partials, reusing cached sealed-cell state from the partial store and
// scanning only what is missing. The merged result is byte-identical
// to a direct whole-range scan: segment boundaries lie on the chunk
// grid, and partial merging at grid boundaries is exactly the
// partition-invariance the engine already guarantees for parallel and
// sharded scans.
func (e *Executor) runPartialsChunked(ctx context.Context, q *Query, gsets []GroupingSet) ([]*Partial, error) {
	st := e.PartialStore()
	if st == nil {
		return nil, errChunkPathNA
	}
	for _, gs := range gsets {
		if len(gs.Aggs) == 0 {
			return nil, fmt.Errorf("engine: query on %q has a grouping set with no aggregates", q.Table)
		}
	}
	t, err := e.cat.Table(q.Table)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	lo, hi := 0, t.rows
	if q.RowHi > 0 {
		if q.RowLo < 0 || q.RowLo > q.RowHi || q.RowHi > t.rows {
			return nil, fmt.Errorf("engine: row range [%d,%d) invalid for table %q with %d rows",
				q.RowLo, q.RowHi, q.Table, t.rows)
		}
		lo, hi = q.RowLo, q.RowHi
	}
	// Sealed cells fully inside [lo,hi): cells in [alo, ahi).
	sealedHi := (t.rows / ChunkRows) * ChunkRows
	alo := alignToGrid(lo)
	ahi := min(chunkStart(chunkOf(hi)), sealedHi)
	if ahi-alo < ChunkRows {
		return nil, errChunkPathNA
	}

	allAggs := e.recordQueryAccess(t, q, gsets)
	var where BoundPredicate
	if q.Where != nil {
		if where, err = q.Where.Bind(t); err != nil {
			return nil, err
		}
	}
	fs, err := buildFilterSet(t, allAggs)
	if err != nil {
		return nil, err
	}
	smp := newSampler(q.SampleFraction, q.SampleSeed, q.SampleBase)
	sig := PlanSignature(q, gsets)

	e.stats.Queries.Add(1)
	e.stats.TableScans.Add(1)

	// Segment the range: head remainder, sealed cells, tail remainder.
	var segs []*chunkSeg
	if lo < alo {
		segs = append(segs, &chunkSeg{lo: lo, hi: min(alo, hi)})
	}
	for c := alo / ChunkRows; c < ahi/ChunkRows; c++ {
		segs = append(segs, &chunkSeg{
			lo:  chunkStart(c),
			hi:  chunkStart(c + 1),
			key: t.chunkHashLocked(c) + "|" + strconv.Itoa(chunkStart(c)) + "|" + sig,
		})
	}
	if ahi < hi {
		segs = append(segs, &chunkSeg{lo: ahi, hi: hi})
	}

	// Serve sealed cells from the store; collect what must be scanned.
	var missing []*chunkSeg
	for _, seg := range segs {
		if seg.key != "" {
			if ps, ok := st.get(seg.key); ok {
				seg.partials = ps
				st.hits.Add(1)
				st.rowsReused.Add(int64(seg.hi - seg.lo))
				continue
			}
			st.misses.Add(1)
		}
		missing = append(missing, seg)
	}

	// Scan the missing segments, using the query's parallelism budget
	// across segments (each segment is one grid cell or remainder, so
	// per-segment parallel scans would be pointless). Plans — bound
	// aggregates, key encoders, the fast group layout — are built ONCE
	// for the whole query; each worker owns one grouper arena and one
	// compiled kernel set, reset between segments, so per-segment cost
	// is O(segment rows + groups seen), never O(plan).
	ref := e.refScan.Load()
	plans, err := buildGrouperPlans(t, gsets, fs, ref, false)
	if err != nil {
		return nil, err
	}
	newSegScanner := func() (func(seg *chunkSeg) error, error) {
		groupers := newGroupers(plans)
		var sk *scanKernels
		if !ref {
			var err error
			if sk, err = compileScan(t, q.Where, fs, smp); err != nil {
				return nil, err
			}
		}
		first := true
		return func(seg *chunkSeg) error {
			if !first {
				for _, g := range groupers {
					g.reset()
				}
			}
			first = false
			var err error
			if ref {
				err = scanPartitionRows(ctx, seg.lo, seg.hi, smp, where, fs, groupers)
			} else {
				err = sk.scanPartition(ctx, seg.lo, seg.hi, groupers)
			}
			if err != nil {
				return err
			}
			seg.partials = make([]*Partial, len(groupers))
			for i, g := range groupers {
				seg.partials[i] = g.partial()
			}
			n := int64(seg.hi - seg.lo)
			st.rowsScanned.Add(n)
			e.stats.RowsRead.Add(n)
			return nil
		}, nil
	}
	workers := q.Parallelism
	if workers > len(missing) {
		workers = len(missing)
	}
	if workers <= 1 {
		if len(missing) > 0 {
			scanSeg, err := newSegScanner()
			if err != nil {
				return nil, err
			}
			for _, seg := range missing {
				if err := scanSeg(seg); err != nil {
					return nil, err
				}
			}
		}
	} else {
		segCh := make(chan *chunkSeg)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				scanSeg, err := newSegScanner()
				if err != nil {
					errs[w] = err
					for range segCh {
						// drain so the sender never blocks
					}
					return
				}
				for seg := range segCh {
					if errs[w] != nil {
						continue // drain after failure
					}
					errs[w] = scanSeg(seg)
				}
			}(w)
		}
		for _, seg := range missing {
			segCh <- seg
		}
		close(segCh)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, seg := range missing {
		if seg.key != "" {
			st.put(seg.key, seg.partials)
		}
	}

	// Merge in range order into fresh accumulators. Stored partials are
	// only ever merge SOURCES (never mutated), and the merger keeps its
	// group index and in-memory accumulators across all segments, so a
	// query's merge cost is limb additions per (chunk, group, aggregate)
	// plus ONE canonicalization per group at the end — not a canon pass
	// per chunk.
	mergers := make([]*partialMerger, len(segs[0].partials))
	for i, p := range segs[0].partials {
		mergers[i] = newPartialMerger(p)
	}
	for _, seg := range segs {
		for i, p := range seg.partials {
			if err := mergers[i].fold(p); err != nil {
				return nil, err
			}
		}
	}
	acc := make([]*Partial, len(mergers))
	for i, m := range mergers {
		acc[i] = m.partial()
	}
	return acc, nil
}

// partialMerger accumulates many disjoint-partition partials of one
// grouping set into in-memory accumulator state.
type partialMerger struct {
	by    []string
	cols  []string
	funcs []AggFunc
	m     map[string]int
	keys  [][]Value
	accs  []accumulator // len(keys) * len(cols)
}

// newPartialMerger builds an empty merger with the shape (grouping
// columns, aggregate list) of the given partial.
func newPartialMerger(shape *Partial) *partialMerger {
	return &partialMerger{
		by:    append([]string(nil), shape.By...),
		cols:  append([]string(nil), shape.Cols...),
		funcs: append([]AggFunc(nil), shape.Funcs...),
		m:     make(map[string]int),
	}
}

// fold merges one partial (a disjoint row partition) into the merger.
func (m *partialMerger) fold(p *Partial) error {
	if len(p.Cols) != len(m.cols) {
		return fmt.Errorf("engine: merging partials with %d vs %d aggregates", len(p.Cols), len(m.cols))
	}
	for i := range m.cols {
		if p.Cols[i] != m.cols[i] || p.Funcs[i] != m.funcs[i] {
			return fmt.Errorf("engine: merging partials with mismatched aggregate %d: %s(%v) vs %s(%v)",
				i, m.cols[i], m.funcs[i], p.Cols[i], p.Funcs[i])
		}
	}
	nAggs := len(m.cols)
	for _, g := range p.Groups {
		if len(g.Accs) != nAggs {
			return fmt.Errorf("engine: partial group carries %d accumulators, want %d", len(g.Accs), nAggs)
		}
		k := valueKey(g.Key)
		slot, ok := m.m[k]
		if !ok {
			slot = len(m.keys)
			m.m[k] = slot
			m.keys = append(m.keys, g.Key)
			m.accs = append(m.accs, make([]accumulator, nAggs)...)
		}
		dst := m.accs[slot*nAggs : (slot+1)*nAggs]
		for i := range dst {
			dst[i].mergeState(g.Accs[i])
		}
	}
	return nil
}

// partial exports the merged state, groups sorted by key — identical
// bytes to chaining Partial.Merge over the same inputs.
func (m *partialMerger) partial() *Partial {
	p := &Partial{By: m.by, Cols: m.cols, Funcs: m.funcs}
	nAggs := len(m.cols)
	p.Groups = make([]PartialGroup, len(m.keys))
	for slot, key := range m.keys {
		accs := m.accs[slot*nAggs : (slot+1)*nAggs]
		pg := PartialGroup{Key: key, Accs: make([]AccState, nAggs)}
		for i := range accs {
			pg.Accs[i] = accState(&accs[i])
		}
		p.Groups[slot] = pg
	}
	sort.Slice(p.Groups, func(i, j int) bool {
		return compareKeys(p.Groups[i].Key, p.Groups[j].Key) < 0
	})
	return p
}

// recordQueryAccess records the query's column-access pattern (the raw
// data behind SeeDB's access-frequency pruning) and returns the flat
// aggregate list. Shared by the direct and chunked execution paths.
func (e *Executor) recordQueryAccess(t *Table, q *Query, gsets []GroupingSet) []AggSpec {
	var touched []string
	seen := map[string]struct{}{}
	touch := func(cols ...string) {
		for _, c := range cols {
			if c == "" {
				continue
			}
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				touched = append(touched, c)
			}
		}
	}
	var allAggs []AggSpec
	for _, gs := range gsets {
		touch(gs.By...)
		for _, a := range gs.Aggs {
			touch(a.Column)
			if a.Filter != nil {
				touch(a.Filter.Columns()...)
			}
		}
		allAggs = append(allAggs, gs.Aggs...)
	}
	if q.Where != nil {
		touch(q.Where.Columns()...)
	}
	e.cat.RecordAccess(q.Table, touched...)
	return allAggs
}
