package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// appendRows generates deterministic extra rows shaped like
// partialTestTable's data, starting at a given offset so values differ
// from the base load.
func appendRows(n int, seed int64) [][]Value {
	rng := rand.New(rand.NewSource(seed))
	dims := []string{"a", "b", "c", "d", "e"}
	rows := make([][]Value, n)
	for i := range rows {
		m := math.Round(rng.Float64()*20000-10000) / 100
		mv := Float(m)
		if rng.Intn(50) == 0 {
			mv = NullValue(TypeFloat)
		}
		rows[i] = []Value{String(dims[rng.Intn(len(dims))]), Int(int64(rng.Intn(4))), mv}
	}
	return rows
}

// TestIncrementalMatchesColdScan is the tentpole invariant: with a
// partial store installed, a query after any number of appends is
// byte-identical to a cold scan of the full table by an executor with
// no store at all.
func TestIncrementalMatchesColdScan(t *testing.T) {
	ctx := context.Background()
	build := func(withStore bool) (*Executor, *Table) {
		cat := NewCatalog()
		tb := partialTestTable(t, 6_000, 31)
		if err := cat.Register(tb); err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(cat)
		if withStore {
			ex.SetPartialStore(NewPartialStore(0))
		}
		return ex, tb
	}
	inc, incTb := build(true)
	cold, coldTb := build(false)

	// Prime the store, then append several batches, re-querying after
	// each; the cold executor receives identical appends and rescans.
	if _, err := inc.Run(ctx, partialTestQuery(1)); err != nil {
		t.Fatal(err)
	}
	for i, delta := range []int{1, 500, 1024, 3000} {
		rows := appendRows(delta, int64(100+i))
		if _, err := incTb.Append(rows); err != nil {
			t.Fatal(err)
		}
		if _, err := coldTb.Append(rows); err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			got, err := inc.Run(ctx, partialTestQuery(par))
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.Run(ctx, partialTestQuery(1))
			if err != nil {
				t.Fatal(err)
			}
			if g, w := resultBytes(t, got), resultBytes(t, want); g != w {
				t.Fatalf("delta=%d par=%d: incremental result differs from cold scan:\n%s\nvs\n%s", delta, par, g, w)
			}
		}
	}
	st := inc.PartialStore().Stats()
	if st.Hits == 0 || st.RowsReused == 0 {
		t.Fatalf("expected sealed-chunk reuse, got %+v", st)
	}
}

// TestIncrementalScansOnlyDelta pins the O(delta) property: after the
// store is primed, a query following an append reads only the tail and
// the appended rows — not the table.
func TestIncrementalScansOnlyDelta(t *testing.T) {
	ctx := context.Background()
	cat := NewCatalog()
	tb := partialTestTable(t, 50_000, 7)
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cat)
	ex.SetPartialStore(NewPartialStore(0))
	if _, err := ex.Run(ctx, partialTestQuery(1)); err != nil {
		t.Fatal(err)
	}

	const delta = 700
	if _, err := tb.Append(appendRows(delta, 9)); err != nil {
		t.Fatal(err)
	}
	_, _, rowsBefore := ex.Stats().Snapshot()
	if _, err := ex.Run(ctx, partialTestQuery(1)); err != nil {
		t.Fatal(err)
	}
	_, _, rowsAfter := ex.Stats().Snapshot()
	scanned := rowsAfter - rowsBefore
	// The rescan is bounded by the delta plus the unsealed tail chunk.
	if maxScan := int64(delta + ChunkRows); scanned > maxScan {
		t.Fatalf("query after %d-row append scanned %d rows, want <= %d", delta, scanned, maxScan)
	}
	if scanned < delta {
		t.Fatalf("query after %d-row append scanned only %d rows", delta, scanned)
	}
	st := ex.PartialStore().Stats()
	if ratio := st.ReuseRatio(); ratio < 0.4 {
		t.Fatalf("expected substantial reuse after append, got ratio %.2f (%+v)", ratio, st)
	}
}

// TestIncrementalRowRanges: the chunked path composes with explicit
// RowLo/RowHi ranges (the cluster's scatter unit), including ranges
// that do not start at zero.
func TestIncrementalRowRanges(t *testing.T) {
	ctx := context.Background()
	cat := NewCatalog()
	tb := partialTestTable(t, 10_000, 3)
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	cold := NewExecutor(cat)
	want, err := cold.Run(ctx, partialTestQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cat)
	ex.SetPartialStore(NewPartialStore(0))
	for _, n := range []int{1, 3, 7} {
		ranges := ShardRanges(tb.NumRows(), 0, 0, n)
		var merged *Partial
		for _, rg := range ranges {
			q := partialTestQuery(1)
			q.RowLo, q.RowHi = rg[0], rg[1]
			ps, err := ex.RunPartials(ctx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if merged == nil {
				merged = ps[0]
				continue
			}
			if err := merged.Merge(ps[0]); err != nil {
				t.Fatal(err)
			}
		}
		if got, w := resultBytes(t, merged.Finalize()), resultBytes(t, want); got != w {
			t.Fatalf("n=%d: range-merged incremental partials differ from cold scan", n)
		}
	}
	if st := ex.PartialStore().Stats(); st.Hits == 0 {
		t.Fatalf("second and later splits should reuse chunk partials, got %+v", st)
	}
}

// TestIncrementalSampledAndFiltered: sampling and per-aggregate filters
// are part of the plan signature, so differently-parameterized queries
// never share chunk entries — and each stays byte-identical to its own
// cold scan.
func TestIncrementalSampledAndFiltered(t *testing.T) {
	ctx := context.Background()
	cat := NewCatalog()
	tb := partialTestTable(t, 8_000, 13)
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	cold := NewExecutor(cat)
	ex := NewExecutor(cat)
	ex.SetPartialStore(NewPartialStore(0))

	mk := func(frac float64, seed uint64) *Query {
		q := partialTestQuery(1)
		q.SampleFraction = frac
		q.SampleSeed = seed
		return q
	}
	for _, q := range []*Query{mk(0, 0), mk(0.5, 1), mk(0.5, 2), mk(0.25, 1)} {
		want, err := cold.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		// Twice: cold-miss pass, then fully-cached pass.
		for i := 0; i < 2; i++ {
			got, err := ex.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := resultBytes(t, got), resultBytes(t, want); g != w {
				t.Fatalf("sample=%g seed=%d pass=%d: incremental differs from cold", q.SampleFraction, q.SampleSeed, i)
			}
		}
	}
}

// TestPartialStoreEviction: the byte budget holds and evictions are
// counted; queries stay correct when everything was evicted.
func TestPartialStoreEviction(t *testing.T) {
	ctx := context.Background()
	cat := NewCatalog()
	tb := partialTestTable(t, 12_000, 5)
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cat)
	store := NewPartialStore(4 << 10) // 4 KiB: a few chunk entries at most
	ex.SetPartialStore(store)
	want, err := NewExecutor(cat).Run(ctx, partialTestQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := ex.Run(ctx, partialTestQuery(1))
		if err != nil {
			t.Fatal(err)
		}
		if g, w := resultBytes(t, got), resultBytes(t, want); g != w {
			t.Fatalf("pass %d: evicting store changed result bytes", i)
		}
	}
	st := store.Stats()
	if st.Evictions == 0 {
		t.Fatalf("tiny budget should evict, got %+v", st)
	}
	if st.Bytes > 3*(4<<10) {
		t.Fatalf("store grew far past its budget: %+v", st)
	}
}

// TestAppendValidation: a bad batch rolls back atomically and keeps the
// table rectangular and version-stable.
func TestAppendValidation(t *testing.T) {
	tb := MustNewTable("t", Schema{
		{Name: "d", Type: TypeString},
		{Name: "m", Type: TypeFloat},
	})
	if _, err := tb.Append([][]Value{{String("x"), Float(1)}, {String("y"), Float(2)}}); err != nil {
		t.Fatal(err)
	}
	fp := tb.Fingerprint()
	// Wrong arity.
	if _, err := tb.Append([][]Value{{String("z")}}); err == nil {
		t.Fatal("expected arity error")
	}
	// Wrong type in the second row of a batch: the whole batch must
	// roll back, including the valid first row.
	if _, err := tb.Append([][]Value{{String("ok"), Float(3)}, {String("bad"), String("nope")}}); err == nil {
		t.Fatal("expected type error")
	}
	if tb.NumRows() != 2 {
		t.Fatalf("failed appends must roll back: %d rows", tb.NumRows())
	}
	if tb.Fingerprint() != fp {
		t.Fatalf("failed appends must not bump the version")
	}
	for _, c := range []string{"d", "m"} {
		col, err := tb.Column(c)
		if err != nil {
			t.Fatal(err)
		}
		if col.Len() != 2 {
			t.Fatalf("column %q has %d rows after rollback", c, col.Len())
		}
	}
	// An empty batch is a no-op.
	if n, err := tb.Append(nil); err != nil || n != 2 {
		t.Fatalf("empty append: n=%d err=%v", n, err)
	}
	if tb.Fingerprint() != fp {
		t.Fatalf("empty append must not bump the version")
	}
}

// TestChunkHashStableAcrossAppends: sealed-cell hashes never change
// once computed, and identically-loaded tables agree on them — the
// content-addressing property the store is built on.
func TestChunkHashStableAcrossAppends(t *testing.T) {
	a := partialTestTable(t, 3_000, 55)
	b := partialTestTable(t, 3_000, 55)
	a.mu.RLock()
	h0 := a.chunkHashLocked(0)
	h1 := a.chunkHashLocked(1)
	a.mu.RUnlock()
	if _, err := a.Append(appendRows(2_500, 4)); err != nil {
		t.Fatal(err)
	}
	a.mu.RLock()
	h0after, h1after := a.chunkHashLocked(0), a.chunkHashLocked(1)
	a.mu.RUnlock()
	if h0 != h0after || h1 != h1after {
		t.Fatal("sealed chunk hashes changed across an append")
	}
	b.mu.RLock()
	b0, b1 := b.chunkHashLocked(0), b.chunkHashLocked(1)
	b.mu.RUnlock()
	if b0 != h0 || b1 != h1 {
		t.Fatal("identically-loaded tables disagree on chunk hashes")
	}
	if h0 == h1 {
		t.Fatal("distinct chunks should hash differently")
	}
	if a.SealedChunks() != 5500/ChunkRows {
		t.Fatalf("SealedChunks=%d, want %d", a.SealedChunks(), 5500/ChunkRows)
	}
}
