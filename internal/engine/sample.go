package engine

import "math"

// sampler implements deterministic Bernoulli row sampling. Whether a
// row is kept depends only on (seed, base+row index), never on scan
// order or partitioning, so serial and parallel executions of a sampled
// query see exactly the same rows — a property the optimizer
// experiments rely on when comparing plans. base is the absolute row
// index the scanned table's row 0 corresponds to: 0 for whole tables,
// and the placement's first absolute row when a cluster worker scans a
// placement fragment — so a sampled scan of a fragment picks exactly
// the rows a single-node scan of the full table would pick in that
// range.
type sampler struct {
	threshold uint64
	seed      uint64
	base      int
}

// newSampler returns a sampler keeping ~fraction of rows, or nil when
// fraction is outside (0,1) meaning "no sampling". base offsets every
// row index (see Query.SampleBase).
func newSampler(fraction float64, seed uint64, base int) *sampler {
	if fraction <= 0 || fraction >= 1 {
		return nil
	}
	t := uint64(fraction * float64(math.MaxUint64))
	return &sampler{threshold: t, seed: seed, base: base}
}

// keep reports whether the row participates in the sample.
func (s *sampler) keep(row int) bool {
	return splitmix64(s.seed^uint64(row+s.base)*0x9E3779B97F4A7C15) < s.threshold
}

// splitmix64 is the SplitMix64 finalizer — a strong, cheap 64-bit
// mixer. Adapted from the public-domain reference implementation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
