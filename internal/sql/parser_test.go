package sql

import (
	"strings"
	"testing"

	"seedb/internal/engine"
)

func TestParseBasicSelect(t *testing.T) {
	stmt, err := Parse("SELECT * FROM Sales WHERE Product = 'Laserwave'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Table != "Sales" {
		t.Errorf("table = %q", stmt.Table)
	}
	if len(stmt.Items) != 1 || !stmt.Items[0].Star {
		t.Errorf("items = %+v", stmt.Items)
	}
	if stmt.Where == nil || stmt.Where.String() != "Product = 'Laserwave'" {
		t.Errorf("where = %v", stmt.Where)
	}
	if stmt.HasAggregates() {
		t.Error("no aggregates expected")
	}
}

func TestParseAggregateGroupBy(t *testing.T) {
	stmt, err := Parse("SELECT store, SUM(amount) FROM Sales WHERE Product = 'Laserwave' GROUP BY store")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if stmt.Items[0].Column != "store" {
		t.Errorf("item 0 = %+v", stmt.Items[0])
	}
	if stmt.Items[1].Agg != "SUM" || stmt.Items[1].AggCol != "amount" {
		t.Errorf("item 1 = %+v", stmt.Items[1])
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "store" || stmt.GroupBy[0].BinWidth != 0 {
		t.Errorf("groupBy = %v", stmt.GroupBy)
	}
	if !stmt.HasAggregates() {
		t.Error("aggregates expected")
	}
}

func TestParseCountStarAndAlias(t *testing.T) {
	stmt, err := Parse("SELECT region, COUNT(*) AS n, AVG(profit) AS mean FROM orders GROUP BY region ORDER BY n DESC, region LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[1].Agg != "COUNT" || stmt.Items[1].AggCol != "" || stmt.Items[1].Alias != "n" {
		t.Errorf("count item = %+v", stmt.Items[1])
	}
	if stmt.Items[2].Alias != "mean" {
		t.Errorf("avg item = %+v", stmt.Items[2])
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("orderBy = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"SELECT * FROM t WHERE a = 1 AND b > 2.5", "(a = 1) AND (b > 2.5)"},
		{"SELECT * FROM t WHERE a = 1 OR b < 2 AND c >= 3", "(a = 1) OR ((b < 2) AND (c >= 3))"},
		{"SELECT * FROM t WHERE NOT (a <> 'x')", "NOT (a <> 'x')"},
		{"SELECT * FROM t WHERE a != 'it''s'", "a <> 'it''s'"},
		{"SELECT * FROM t WHERE a IN ('x', 'y')", "a IN ('x', 'y')"},
		{"SELECT * FROM t WHERE a NOT IN (1, 2)", "a NOT IN (1, 2)"},
		{"SELECT * FROM t WHERE a IS NULL", "a IS NULL"},
		{"SELECT * FROM t WHERE a IS NOT NULL", "a IS NOT NULL"},
		{"SELECT * FROM t WHERE a BETWEEN 1 AND 5", "(a >= 1) AND (a <= 5)"},
		{"SELECT * FROM t WHERE a <= -3", "a <= -3"},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got := stmt.Where.String(); got != tc.want {
			t.Errorf("%s:\n got  %s\n want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseTimestampLiteral(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE ts >= TIMESTAMP '2014-09-01'")
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := stmt.Where.(*engine.ComparePred)
	if !ok {
		t.Fatalf("where = %T", stmt.Where)
	}
	if cp.Value.Kind != engine.TypeTime {
		t.Errorf("literal type = %v", cp.Value.Kind)
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	stmt, err := Parse(`SELECT "ship mode" FROM orders WHERE "ship mode" = 'Air'`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Column != "ship mode" {
		t.Errorf("column = %q", stmt.Items[0].Column)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t WHERE a = ",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t WHERE a IN (1,)",
		"SELECT * FROM t WHERE a BETWEEN 1",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER city",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t extra garbage",
		"SELECT SUM( FROM t",
		"SELECT SUM(a FROM t",
		"SELECT * FROM where",
		"SELECT * FROM t WHERE select = 1",
		"SELECT * FROM t WHERE a ! 1",
		"SELECT * FROM t WHERE ts = TIMESTAMP 'gibberish'",
		`SELECT "unterminated FROM t`,
		"SELECT a, FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestStmtString(t *testing.T) {
	src := "SELECT store, SUM(amount) AS total, COUNT(*) FROM sales WHERE product = 'X' GROUP BY store ORDER BY total DESC LIMIT 5"
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.String()
	for _, frag := range []string{"SELECT store, SUM(amount) AS total, COUNT(*)", "FROM sales", "WHERE product = 'X'", "GROUP BY store", "ORDER BY total DESC", "LIMIT 5"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("String() = %q missing %q", rendered, frag)
		}
	}
	// Round trip: rendered SQL must re-parse to the same string.
	stmt2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if stmt2.String() != rendered {
		t.Errorf("round trip:\n first  %s\n second %s", rendered, stmt2.String())
	}
	// Star render.
	star, _ := Parse("SELECT * FROM t")
	if star.String() != "SELECT * FROM t" {
		t.Errorf("star String() = %q", star.String())
	}
}

func TestLexerNumbers(t *testing.T) {
	ok := []string{
		"SELECT * FROM t WHERE a = 1e5",
		"SELECT * FROM t WHERE a = 1.5E-3",
		"SELECT * FROM t WHERE a = .5",
		"SELECT * FROM t WHERE a = -2",
	}
	for _, src := range ok {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	if _, err := Parse("SELECT * FROM t WHERE a = ."); err == nil {
		t.Error("bare dot must error")
	}
}

func TestParseBinGroupBy(t *testing.T) {
	stmt, err := Parse("SELECT bin(price, 10) AS bucket, COUNT(*) FROM t GROUP BY bin(price, 10)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Column != "price" || stmt.Items[0].BinWidth != 10 || stmt.Items[0].Alias != "bucket" {
		t.Errorf("select item = %+v", stmt.Items[0])
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "price" || stmt.GroupBy[0].BinWidth != 10 {
		t.Errorf("group by = %+v", stmt.GroupBy)
	}
	// Renders back and re-parses.
	rendered := stmt.String()
	if !strings.Contains(rendered, "bin(price, 10)") {
		t.Errorf("String() = %q", rendered)
	}
	if _, err := Parse(rendered); err != nil {
		t.Errorf("re-parse of %q: %v", rendered, err)
	}
	// Errors.
	bad := []string{
		"SELECT bin(price) FROM t",
		"SELECT bin(price, 0) FROM t",
		"SELECT bin(price, -5) FROM t",
		"SELECT bin(price, x) FROM t",
		"SELECT COUNT(*) FROM t GROUP BY bin(price 10)",
		"SELECT COUNT(*) FROM t GROUP BY bin(price,",
		"SELECT COUNT(*) FROM t GROUP BY where",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestParseInNullLiteral(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = NULL")
	if err != nil {
		t.Fatal(err)
	}
	cp := stmt.Where.(*engine.ComparePred)
	if !cp.Value.Null {
		t.Error("NULL literal should parse to null value")
	}
}

func TestParseExplore(t *testing.T) {
	// Bare operator.
	stmt, err := Parse("SELECT * FROM t WHERE a = 'x' EXPLORE trend")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Explore == nil || stmt.Explore.Operator != "trend" {
		t.Fatalf("Explore = %+v, want trend", stmt.Explore)
	}

	// Bare probe dimension defaults to count(*).
	stmt, err = Parse("SELECT * FROM t EXPLORE similarity PROBE category")
	if err != nil {
		t.Fatal(err)
	}
	e := stmt.Explore
	if e.Operator != "similarity" || e.ProbeDimension != "category" || e.ProbeFunc != "" {
		t.Fatalf("Explore = %+v", e)
	}

	// Full probe form with binning.
	stmt, err = Parse("SELECT * FROM t EXPLORE similarity PROBE sum(sales) BY bin(price, 100)")
	if err != nil {
		t.Fatal(err)
	}
	e = stmt.Explore
	if e.ProbeFunc != "sum" || e.ProbeMeasure != "sales" || e.ProbeDimension != "price" || e.ProbeBinWidth != 100 {
		t.Fatalf("Explore = %+v", e)
	}

	// COUNT(*) probe.
	stmt, err = Parse("SELECT * FROM t EXPLORE similarity PROBE count(*) BY region")
	if err != nil {
		t.Fatal(err)
	}
	e = stmt.Explore
	if e.ProbeFunc != "count" || e.ProbeMeasure != "" || e.ProbeDimension != "region" {
		t.Fatalf("Explore = %+v", e)
	}

	// Round-trip: String must re-parse to the same clause.
	for _, src := range []string{
		"SELECT * FROM t EXPLORE outlier",
		"SELECT * FROM t WHERE a > 1 LIMIT 5 EXPLORE trend",
		"SELECT * FROM t EXPLORE similarity PROBE category",
		"SELECT * FROM t EXPLORE similarity PROBE SUM(sales) BY bin(price, 100)",
	} {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s1.String(), err)
		}
		if *s1.Explore != *s2.Explore || s1.String() != s2.String() {
			t.Errorf("round trip drifted: %q vs %q", s1.String(), s2.String())
		}
	}

	// Errors.
	bad := []string{
		"SELECT * FROM t EXPLORE",
		"SELECT * FROM t EXPLORE where",
		"SELECT * FROM t EXPLORE similarity PROBE",
		"SELECT * FROM t EXPLORE similarity PROBE frobnicate(x) BY d",
		"SELECT * FROM t EXPLORE similarity PROBE sum(sales) d",
		"SELECT * FROM t EXPLORE trend trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}
