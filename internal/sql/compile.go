package sql

import (
	"context"
	"fmt"

	"seedb/internal/engine"
)

// ScanSpec is a compiled plain projection (no aggregates).
type ScanSpec struct {
	Table   string
	Columns []string // nil means all
	Where   engine.Predicate
	Limit   int
}

// Compiled is an executable statement: either an aggregation query or a
// projection scan, depending on the SELECT list.
type Compiled struct {
	Stmt *SelectStmt
	Agg  *engine.Query
	Scan *ScanSpec
}

// Run executes the compiled statement on the executor.
func (c *Compiled) Run(ctx context.Context, ex *engine.Executor) (*engine.Result, error) {
	if c.Agg != nil {
		return ex.Run(ctx, c.Agg)
	}
	return ex.Scan(ctx, c.Scan.Table, c.Scan.Columns, c.Scan.Where, c.Scan.Limit)
}

// Compile validates a parsed statement against the catalog and lowers
// it to an executable form. It also coerces string literals compared
// against TIMESTAMP columns, so users can write
// `WHERE order_date >= '2014-01-01'`.
func Compile(stmt *SelectStmt, cat *engine.Catalog) (*Compiled, error) {
	t, err := cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	where := stmt.Where
	if where != nil {
		if where, err = coercePredicate(where, t); err != nil {
			return nil, err
		}
		for _, col := range where.Columns() {
			if !t.HasColumn(col) {
				return nil, fmt.Errorf("sql: table %q has no column %q (in WHERE)", stmt.Table, col)
			}
		}
	}

	if stmt.Explore != nil && stmt.HasAggregates() {
		return nil, fmt.Errorf("sql: EXPLORE applies to plain analyst queries, not aggregate queries")
	}

	if !stmt.HasAggregates() {
		if len(stmt.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: GROUP BY requires at least one aggregate in the SELECT list")
		}
		if len(stmt.OrderBy) > 0 {
			return nil, fmt.Errorf("sql: ORDER BY is only supported on aggregate queries")
		}
		spec := &ScanSpec{Table: stmt.Table, Where: where, Limit: stmt.Limit}
		for _, it := range stmt.Items {
			if it.Star {
				spec.Columns = nil
				break
			}
			if it.BinWidth > 0 {
				return nil, fmt.Errorf("sql: bin(%s, %g) requires GROUP BY and an aggregate", it.Column, it.BinWidth)
			}
			if !t.HasColumn(it.Column) {
				return nil, fmt.Errorf("sql: table %q has no column %q", stmt.Table, it.Column)
			}
			spec.Columns = append(spec.Columns, it.Column)
		}
		return &Compiled{Stmt: stmt, Scan: spec}, nil
	}

	// Aggregate query: every bare column must be in GROUP BY and vice
	// versa (we require GROUP BY to list exactly the bare columns).
	q := &engine.Query{Table: stmt.Table, Where: where, Limit: stmt.Limit}
	bare := map[string]bool{}
	bareBins := map[string]float64{}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: cannot mix * with aggregates")
		}
		if it.Agg == "" {
			bare[it.Column] = true
			if it.BinWidth > 0 {
				bareBins[it.Column] = it.BinWidth
			}
			continue
		}
		fn, err := engine.ParseAggFunc(it.Agg)
		if err != nil {
			return nil, err
		}
		if it.AggCol != "" {
			col, err := t.Column(it.AggCol)
			if err != nil {
				return nil, fmt.Errorf("sql: %w (in %s)", err, it.Agg)
			}
			if fn != engine.AggCount && !col.Type().Numeric() {
				return nil, fmt.Errorf("sql: %s(%s): column is %v, need a numeric column", it.Agg, it.AggCol, col.Type())
			}
		}
		q.Aggs = append(q.Aggs, engine.AggSpec{Func: fn, Column: it.AggCol, Alias: it.Alias})
	}
	grouped := map[string]bool{}
	groupedBin := map[string]float64{}
	for _, g := range stmt.GroupBy {
		col, err := t.Column(g.Column)
		if err != nil {
			return nil, fmt.Errorf("sql: %w (in GROUP BY)", err)
		}
		if g.BinWidth > 0 && col.Type() == engine.TypeString {
			return nil, fmt.Errorf("sql: cannot bin STRING column %q", g.Column)
		}
		grouped[g.Column] = true
		q.GroupBy = append(q.GroupBy, g.Column)
		if g.BinWidth > 0 {
			groupedBin[g.Column] = g.BinWidth
			if q.BinWidths == nil {
				q.BinWidths = map[string]float64{}
			}
			q.BinWidths[g.Column] = g.BinWidth
		}
	}
	for col, width := range bareBins {
		if got := groupedBin[col]; got != width {
			return nil, fmt.Errorf("sql: bin(%s, %g) in SELECT must match GROUP BY (got %g)", col, width, got)
		}
	}
	for col := range bare {
		if !grouped[col] {
			return nil, fmt.Errorf("sql: column %q must appear in GROUP BY", col)
		}
	}
	for _, o := range stmt.OrderBy {
		q.OrderBy = append(q.OrderBy, engine.OrderKey{Column: o.Column, Desc: o.Desc})
	}
	return &Compiled{Stmt: stmt, Agg: q}, nil
}

// ParseAndCompile is the convenience front door: SQL text to an
// executable statement in one call.
func ParseAndCompile(src string, cat *engine.Catalog) (*Compiled, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(stmt, cat)
}

// AnalystQuery resolves SQL text into the (table, predicate) pair of a
// SeeDB analyst query. The statement must be a plain selection — it
// defines the data subset, not a view — so aggregate queries are
// rejected. Both the public DB API and the service layer route their
// RecommendSQL front doors through this single validation point. A
// trailing EXPLORE clause, if present, parses but is discarded; callers
// that honor it use AnalystQueryExplore.
func AnalystQuery(src string, cat *engine.Catalog) (table string, where engine.Predicate, err error) {
	table, where, _, err = AnalystQueryExplore(src, cat)
	return table, where, err
}

// AnalystQueryExplore is AnalystQuery plus the optional trailing
// EXPLORE clause, which selects the exploration operator (and, for
// similarity, the probe view) the recommendation run should use. The
// clause is returned verbatim — operator names are validated by the
// core registry, not here — and is nil when the query carries none.
func AnalystQueryExplore(src string, cat *engine.Catalog) (table string, where engine.Predicate, explore *ExploreClause, err error) {
	c, err := ParseAndCompile(src, cat)
	if err != nil {
		return "", nil, nil, err
	}
	if c.Scan == nil {
		return "", nil, nil, fmt.Errorf("sql: the analyst query must be a plain SELECT (it defines the data subset); got an aggregate query")
	}
	return c.Scan.Table, c.Scan.Where, c.Stmt.Explore, nil
}

// coercePredicate rewrites literals so their types line up with the
// column they are compared against — today that means string literals
// against TIMESTAMP columns become timestamps.
func coercePredicate(p engine.Predicate, t *engine.Table) (engine.Predicate, error) {
	switch pred := p.(type) {
	case *engine.ComparePred:
		v, err := coerceLiteral(pred.Column, pred.Value, t)
		if err != nil {
			return nil, err
		}
		if !v.Equal(pred.Value) {
			return engine.Compare(pred.Column, pred.Op, v), nil
		}
		return pred, nil
	case *engine.InPred:
		out := &engine.InPred{Column: pred.Column, Negate: pred.Negate}
		for _, v := range pred.Values {
			cv, err := coerceLiteral(pred.Column, v, t)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, cv)
		}
		return out, nil
	case *engine.AndPred:
		children, err := coerceChildren(pred.Children, t)
		if err != nil {
			return nil, err
		}
		return engine.And(children...), nil
	case *engine.OrPred:
		children, err := coerceChildren(pred.Children, t)
		if err != nil {
			return nil, err
		}
		return engine.Or(children...), nil
	case *engine.NotPred:
		child, err := coercePredicate(pred.Child, t)
		if err != nil {
			return nil, err
		}
		return engine.Not(child), nil
	default:
		return p, nil
	}
}

func coerceChildren(children []engine.Predicate, t *engine.Table) ([]engine.Predicate, error) {
	out := make([]engine.Predicate, len(children))
	for i, c := range children {
		cc, err := coercePredicate(c, t)
		if err != nil {
			return nil, err
		}
		out[i] = cc
	}
	return out, nil
}

func coerceLiteral(column string, v engine.Value, t *engine.Table) (engine.Value, error) {
	col, err := t.Column(column)
	if err != nil {
		return engine.Value{}, err
	}
	if v.Null {
		return v, nil
	}
	switch col.Type() {
	case engine.TypeTime:
		if v.Kind == engine.TypeString {
			ts, err := parseTimestamp(v.S)
			if err != nil {
				return engine.Value{}, fmt.Errorf("sql: column %q is TIMESTAMP: %w", column, err)
			}
			return engine.Time(ts), nil
		}
		if v.Kind != engine.TypeTime {
			return engine.Value{}, fmt.Errorf("sql: cannot compare TIMESTAMP column %q with %v", column, v.Kind)
		}
	case engine.TypeInt, engine.TypeFloat:
		if !v.Kind.Numeric() {
			return engine.Value{}, fmt.Errorf("sql: cannot compare %v column %q with %v", col.Type(), column, v.Kind)
		}
	case engine.TypeString:
		if v.Kind != engine.TypeString {
			return engine.Value{}, fmt.Errorf("sql: cannot compare STRING column %q with %v", column, v.Kind)
		}
	}
	return v, nil
}
