package sql

import (
	"context"
	"testing"
	"time"

	"seedb/internal/engine"
)

func compileCatalog(t *testing.T) (*engine.Catalog, *engine.Executor) {
	t.Helper()
	cat := engine.NewCatalog()
	tb := engine.MustNewTable("sales", engine.Schema{
		{Name: "product", Type: engine.TypeString},
		{Name: "store", Type: engine.TypeString},
		{Name: "amount", Type: engine.TypeFloat},
		{Name: "when", Type: engine.TypeTime},
	})
	base := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	rows := []struct {
		p, s string
		a    float64
		d    int
	}{
		{"Laserwave", "Cambridge, MA", 180.55, 0},
		{"Laserwave", "Seattle, WA", 145.50, 31},
		{"Laserwave", "New York, NY", 122.00, 59},
		{"Laserwave", "San Francisco, CA", 90.13, 90},
		{"Saberwave", "Cambridge, MA", 50, 10},
	}
	for _, r := range rows {
		if err := tb.AppendRow(engine.String(r.p), engine.String(r.s), engine.Float(r.a), engine.Time(base.AddDate(0, 0, r.d))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	return cat, engine.NewExecutor(cat)
}

func TestCompileAndRunAggregate(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT store, SUM(amount) AS total FROM sales WHERE product = 'Laserwave' GROUP BY store ORDER BY total DESC", cat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg == nil {
		t.Fatal("expected aggregate plan")
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0][0].S != "Cambridge, MA" || res.Rows[0][1].F != 180.55 {
		t.Errorf("top row = %v", res.Rows[0])
	}
}

func TestCompileAndRunScan(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT product, amount FROM sales WHERE amount > 100 LIMIT 2", cat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scan == nil {
		t.Fatal("expected scan plan")
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Errorf("result shape %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestCompileSelectStarScan(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT * FROM sales", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 4 || len(res.Rows) != 5 {
		t.Errorf("result shape %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestCompileTimestampCoercion(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT COUNT(*) AS n FROM sales WHERE when >= '2014-02-01'", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Errorf("count = %v, want 3 (Feb 1, Mar 1, Apr 1 rows)", res.Rows[0][0])
	}
	// IN list and nested predicates coerce too.
	c2, err := ParseAndCompile("SELECT COUNT(*) AS n FROM sales WHERE when IN ('2014-01-01') OR (NOT when < '2014-04-01')", cat)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].I != 2 {
		t.Errorf("count = %v, want 2", res2.Rows[0][0])
	}
}

func TestCompileErrors(t *testing.T) {
	cat, _ := compileCatalog(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT zz FROM sales",
		"SELECT store, SUM(zz) FROM sales GROUP BY store",
		"SELECT store, SUM(amount) FROM sales GROUP BY zz",
		"SELECT store, SUM(amount) FROM sales",            // bare col not grouped
		"SELECT *, SUM(amount) FROM sales GROUP BY store", // star with agg
		"SELECT store FROM sales GROUP BY store",          // group by without agg
		"SELECT store FROM sales ORDER BY store",          // order by on scan
		"SELECT * FROM sales WHERE zz = 1",
		"SELECT COUNT(*) FROM sales WHERE when > 'notadate'",
	}
	for _, src := range bad {
		if _, err := ParseAndCompile(src, cat); err == nil {
			t.Errorf("ParseAndCompile(%q) should error", src)
		}
	}
	if _, err := ParseAndCompile("SELECT (", cat); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestCompileBinnedGroupBy(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT bin(amount, 50), COUNT(*) AS n FROM sales GROUP BY bin(amount, 50)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg == nil || c.Agg.BinWidths["amount"] != 50 {
		t.Fatalf("bin width not compiled: %+v", c.Agg)
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	// Amounts: 180.55, 145.50, 122.00, 90.13, 50 → bins 150, 100, 100,
	// 50, 50 → 3 groups.
	if len(res.Rows) != 3 {
		t.Errorf("bins = %d: %v", len(res.Rows), res.Rows)
	}
	// Mismatched widths between SELECT and GROUP BY error.
	if _, err := ParseAndCompile("SELECT bin(amount, 50), COUNT(*) FROM sales GROUP BY bin(amount, 25)", cat); err == nil {
		t.Error("width mismatch must error")
	}
	// bin in a plain scan errors.
	if _, err := ParseAndCompile("SELECT bin(amount, 50) FROM sales", cat); err == nil {
		t.Error("bin without aggregate must error")
	}
	// bin on a string column is rejected at compile time.
	if _, err := ParseAndCompile("SELECT bin(store, 5), COUNT(*) FROM sales GROUP BY bin(store, 5)", cat); err == nil {
		t.Error("binning a string column must error")
	}
}

func TestCompileGlobalAggregate(t *testing.T) {
	cat, ex := compileCatalog(t)
	c, err := ParseAndCompile("SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM sales", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate should return 1 row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 5 {
		t.Errorf("COUNT(*) = %v", res.Rows[0][0])
	}
}

func TestAnalystQueryExplore(t *testing.T) {
	cat, _ := compileCatalog(t)

	table, where, explore, err := AnalystQueryExplore(
		"SELECT * FROM sales WHERE product = 'Laserwave' EXPLORE similarity PROBE sum(amount) BY store", cat)
	if err != nil {
		t.Fatal(err)
	}
	if table != "sales" || where == nil {
		t.Fatalf("table=%q where=%v", table, where)
	}
	if explore == nil || explore.Operator != "similarity" || explore.ProbeFunc != "sum" ||
		explore.ProbeMeasure != "amount" || explore.ProbeDimension != "store" {
		t.Fatalf("explore = %+v", explore)
	}

	// No clause → nil.
	_, _, explore, err = AnalystQueryExplore("SELECT * FROM sales", cat)
	if err != nil || explore != nil {
		t.Fatalf("want nil clause, got %+v, %v", explore, err)
	}

	// AnalystQuery tolerates (and discards) the clause.
	if _, _, err := AnalystQuery("SELECT * FROM sales EXPLORE trend", cat); err != nil {
		t.Fatalf("AnalystQuery with EXPLORE: %v", err)
	}

	// EXPLORE on an aggregate query is rejected at compile time.
	if _, err := ParseAndCompile("SELECT store, COUNT(*) FROM sales GROUP BY store EXPLORE trend", cat); err == nil {
		t.Error("EXPLORE on an aggregate query should fail to compile")
	}
}
