package sql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"seedb/internal/engine"
)

// randomStmt builds a syntactically valid random statement from a
// small vocabulary, as a generator for the round-trip property.
func randomStmt(rng *rand.Rand) string {
	cols := []string{"a", "b", "c", "d"}
	aggs := []string{"SUM", "COUNT", "AVG", "MIN", "MAX"}
	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }

	groupCol := pick(cols)
	binned := rng.Intn(3) == 0
	groupExpr := groupCol
	width := 0.0
	if binned {
		width = float64(1 + rng.Intn(20))
		groupExpr = fmt.Sprintf("bin(%s, %g)", groupCol, width)
	}

	items := groupExpr
	nAggs := 1 + rng.Intn(3)
	for i := 0; i < nAggs; i++ {
		if rng.Intn(4) == 0 {
			items += ", COUNT(*)"
		} else {
			items += fmt.Sprintf(", %s(%s)", pick(aggs), pick(cols))
		}
		if rng.Intn(3) == 0 {
			items += fmt.Sprintf(" AS al%d", i)
		}
	}
	s := fmt.Sprintf("SELECT %s FROM t", items)

	switch rng.Intn(4) {
	case 0:
		s += fmt.Sprintf(" WHERE %s = '%s'", pick(cols), pick([]string{"x", "it''s", "héllo"}))
	case 1:
		s += fmt.Sprintf(" WHERE %s > %d AND %s IS NOT NULL", pick(cols), rng.Intn(100), pick(cols))
	case 2:
		s += fmt.Sprintf(" WHERE %s IN (1, 2, 3) OR NOT %s < %d", pick(cols), pick(cols), rng.Intn(10))
	}
	s += " GROUP BY " + groupExpr
	if rng.Intn(2) == 0 {
		dir := ""
		if rng.Intn(2) == 0 {
			dir = " DESC"
		}
		s += " ORDER BY " + groupCol + dir
	}
	if rng.Intn(2) == 0 {
		s += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(50))
	}
	return s
}

// TestParseRenderRoundTripProperty: for generated statements,
// Parse → String → Parse → String must reach a fixed point, and both
// parses must agree structurally.
func TestParseRenderRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomStmt(rng)
		stmt1, err := Parse(src)
		if err != nil {
			t.Logf("generated invalid SQL %q: %v", src, err)
			return false
		}
		rendered1 := stmt1.String()
		stmt2, err := Parse(rendered1)
		if err != nil {
			t.Logf("re-parse of %q failed: %v", rendered1, err)
			return false
		}
		rendered2 := stmt2.String()
		if rendered1 != rendered2 {
			t.Logf("not a fixed point:\n  %s\n  %s", rendered1, rendered2)
			return false
		}
		if len(stmt1.Items) != len(stmt2.Items) || len(stmt1.GroupBy) != len(stmt2.GroupBy) ||
			stmt1.Limit != stmt2.Limit || len(stmt1.OrderBy) != len(stmt2.OrderBy) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripExecutes compiles and runs a sample of generated
// statements against a real table: whatever parses must either compile
// cleanly or fail with a typed error, never panic.
func TestRoundTripExecutes(t *testing.T) {
	cat := engine.NewCatalog()
	tb := engine.MustNewTable("t", engine.Schema{
		{Name: "a", Type: engine.TypeString},
		{Name: "b", Type: engine.TypeInt},
		{Name: "c", Type: engine.TypeFloat},
		{Name: "d", Type: engine.TypeFloat},
	})
	for i := 0; i < 200; i++ {
		_ = tb.AppendRow(
			engine.String(fmt.Sprintf("g%d", i%5)),
			engine.Int(int64(i%13)),
			engine.Float(float64(i)/7),
			engine.Float(float64(100-i)),
		)
	}
	_ = cat.Register(tb)
	ex := engine.NewExecutor(cat)

	rng := rand.New(rand.NewSource(99))
	ran := 0
	for i := 0; i < 200; i++ {
		src := randomStmt(rng)
		c, err := ParseAndCompile(src, cat)
		if err != nil {
			// Semantic rejects (e.g. SUM over the string column a) are
			// fine; panics are not, and the call returning is the test.
			continue
		}
		if _, err := c.Run(t.Context(), ex); err != nil {
			t.Errorf("execution of %q failed: %v", src, err)
		}
		ran++
	}
	if ran == 0 {
		t.Error("no generated statement executed; generator too narrow")
	}
}
