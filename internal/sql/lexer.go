// Package sql implements the SQL subset SeeDB speaks: single-table
// SELECT statements with aggregation, grouping, filtering, ordering and
// limits. The frontend's SQL text box, the query-builder, and SeeDB's
// own generated view queries all round-trip through this package.
//
// Grammar (case-insensitive keywords):
//
//	SELECT item [, item ...]
//	FROM table
//	[WHERE predicate]
//	[GROUP BY column [, column ...]]
//	[ORDER BY column [ASC|DESC] [, ...]]
//	[LIMIT n]
//
//	item      := '*' | column | agg '(' column | '*' ')' [AS alias]
//	predicate := disjunction of conjunctions of:
//	             column (= | <> | != | < | <= | > | >=) literal
//	             column [NOT] IN '(' literal [, literal ...] ')'
//	             column IS [NOT] NULL
//	             column BETWEEN literal AND literal
//	             NOT predicate | '(' predicate ')'
//	literal   := number | 'string' | TIMESTAMP 'RFC3339 or 2006-01-02'
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // = <> != < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokStar:
		return "'*'"
	case tokOp:
		return "operator"
	default:
		return "token"
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer converts SQL text into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front; SeeDB statements are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: position %d: unexpected '!'", start)
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case c >= '0' && c <= '9' || c == '-' || c == '.':
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("sql: position %d: unexpected character %q", start, string(c))
	}
}

// lexString reads a single-quoted string; ” escapes a quote.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sql: position %d: unterminated string literal", start)
}

// lexQuotedIdent reads a double-quoted identifier (for column names
// containing spaces or punctuation).
func (l *lexer) lexQuotedIdent() (token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokIdent, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sql: position %d: unterminated quoted identifier", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := false
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
		digits = true
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
			digits = true
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if !digits {
		return token{}, fmt.Errorf("sql: position %d: malformed number", start)
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}
