package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"seedb/internal/engine"
)

// SelectItem is one output expression of a SELECT statement.
type SelectItem struct {
	Star     bool    // SELECT *
	Column   string  // bare column reference (when Agg is empty)
	BinWidth float64 // > 0 when the column is bin(column, width)
	Agg      string  // aggregate function name, e.g. "SUM"
	AggCol   string  // aggregate argument; "" means COUNT(*)
	Alias    string  // AS alias
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Column string
	Desc   bool
}

// GroupItem is one GROUP BY term: a column, optionally binned with
// bin(column, width).
type GroupItem struct {
	Column   string
	BinWidth float64
}

// ExploreClause is the parsed trailing EXPLORE clause of an analyst
// query: it names the exploration operator that should score the view
// space, plus — for similarity — the probe view to compare against:
//
//	EXPLORE trend
//	EXPLORE similarity PROBE category
//	EXPLORE similarity PROBE sum(sales) BY bin(price, 100)
//
// The parser does not validate the operator name: the registry of
// operators lives in the core layer, and an unknown name fails there
// with the full list of valid choices. A bare PROBE dimension defaults
// to the count(*) probe, matching the core option defaults.
type ExploreClause struct {
	Operator       string
	ProbeFunc      string // aggregate name, lower-case; "" = default
	ProbeMeasure   string // "" for count(*)
	ProbeDimension string // "" when no PROBE clause
	ProbeBinWidth  float64
}

// SelectStmt is the parsed form of a SeeDB SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	Table   string
	Where   engine.Predicate // nil when absent
	GroupBy []GroupItem
	OrderBy []OrderItem
	Limit   int            // 0 means no limit
	Explore *ExploreClause // nil when absent
}

// HasAggregates reports whether any select item is an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// String renders the statement back to SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.Agg != "":
			arg := it.AggCol
			if arg == "" {
				arg = "*"
			}
			fmt.Fprintf(&b, "%s(%s)", it.Agg, arg)
		case it.BinWidth > 0:
			fmt.Fprintf(&b, "bin(%s, %g)", it.Column, it.BinWidth)
		default:
			b.WriteString(it.Column)
		}
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			if g.BinWidth > 0 {
				parts[i] = fmt.Sprintf("bin(%s, %g)", g.Column, g.BinWidth)
			} else {
				parts[i] = g.Column
			}
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Column
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Explore != nil {
		b.WriteString(" EXPLORE " + s.Explore.Operator)
		if s.Explore.ProbeDimension != "" {
			b.WriteString(" PROBE ")
			if s.Explore.ProbeFunc != "" {
				arg := s.Explore.ProbeMeasure
				if arg == "" {
					arg = "*"
				}
				fmt.Fprintf(&b, "%s(%s) BY ", strings.ToUpper(s.Explore.ProbeFunc), arg)
			}
			if s.Explore.ProbeBinWidth > 0 {
				fmt.Fprintf(&b, "bin(%s, %g)", s.Explore.ProbeDimension, s.Explore.ProbeBinWidth)
			} else {
				b.WriteString(s.Explore.ProbeDimension)
			}
		}
	}
	return b.String()
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s %q after statement", p.cur().kind, p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// atKeyword reports whether the current token is the given keyword
// (case-insensitive). Empty kw matches nothing.
func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return kw != "" && t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	p.advance()
	return nil
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return token{}, p.errf("expected %s, found %q", kind, t.text)
	}
	p.advance()
	return t, nil
}

// reserved words that terminate identifier lists.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "limit": true, "and": true, "or": true, "not": true,
	"in": true, "is": true, "null": true, "as": true, "asc": true,
	"desc": true, "between": true, "timestamp": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if reserved[strings.ToLower(tbl.text)] {
		return nil, p.errf("expected table name, found keyword %q", tbl.text)
	}
	stmt.Table = tbl.text

	if p.atKeyword("where") {
		p.advance()
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = pred
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseGroupItem()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, item)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			item := OrderItem{Column: col.text}
			if p.atKeyword("asc") {
				p.advance()
			} else if p.atKeyword("desc") {
				p.advance()
				item.Desc = true
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("limit") {
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errf("invalid LIMIT %q", n.text)
		}
		stmt.Limit = limit
	}
	if p.atKeyword("explore") {
		p.advance()
		ec, err := p.parseExplore()
		if err != nil {
			return nil, err
		}
		stmt.Explore = ec
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %q", p.cur().text)
	}
	return stmt, nil
}

// parseExplore parses the clause body after the EXPLORE keyword:
// an operator name, optionally followed by
// PROBE [agg(col|*) BY] (dimension | bin(dimension, width)).
func (p *parser) parseExplore() (*ExploreClause, error) {
	opTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if reserved[strings.ToLower(opTok.text)] {
		return nil, p.errf("expected operator name after EXPLORE, found keyword %q", opTok.text)
	}
	ec := &ExploreClause{Operator: strings.ToLower(opTok.text)}
	if !p.atKeyword("probe") {
		return ec, nil
	}
	p.advance()
	t := p.cur()
	// Aggregate probe form: agg(col|*) BY dimension.
	if t.kind == tokIdent && p.toks[p.i+1].kind == tokLParen && !strings.EqualFold(t.text, "bin") {
		if _, err := engine.ParseAggFunc(t.text); err != nil {
			return nil, p.errf("unknown aggregate %q in PROBE", t.text)
		}
		ec.ProbeFunc = strings.ToLower(t.text)
		p.advance() // name
		p.advance() // (
		switch p.cur().kind {
		case tokStar:
			p.advance()
		case tokIdent:
			ec.ProbeMeasure = p.cur().text
			p.advance()
		default:
			return nil, p.errf("expected column or '*' in PROBE %s(...)", ec.ProbeFunc)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
	}
	gi, err := p.parseGroupItem()
	if err != nil {
		return nil, err
	}
	ec.ProbeDimension = gi.Column
	ec.ProbeBinWidth = gi.BinWidth
	return ec, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tokStar {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if t.kind != tokIdent {
		return SelectItem{}, p.errf("expected column or aggregate, found %q", t.text)
	}
	// bin(column, width)?
	if strings.EqualFold(t.text, "bin") && p.toks[p.i+1].kind == tokLParen {
		col, width, err := p.parseBinCall()
		if err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Column: col, BinWidth: width}
		if alias, ok, err := p.parseAlias(); err != nil {
			return SelectItem{}, err
		} else if ok {
			item.Alias = alias
		}
		return item, nil
	}
	// Aggregate call?
	if _, err := engine.ParseAggFunc(t.text); err == nil && p.toks[p.i+1].kind == tokLParen {
		fn := strings.ToUpper(t.text)
		p.advance() // name
		p.advance() // (
		var arg string
		switch p.cur().kind {
		case tokStar:
			p.advance()
		case tokIdent:
			arg = p.cur().text
			p.advance()
		default:
			return SelectItem{}, p.errf("expected column or '*' in %s(...)", fn)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: fn, AggCol: arg}
		if alias, ok, err := p.parseAlias(); err != nil {
			return SelectItem{}, err
		} else if ok {
			item.Alias = alias
		}
		return item, nil
	}
	if reserved[strings.ToLower(t.text)] {
		return SelectItem{}, p.errf("expected column, found keyword %q", t.text)
	}
	p.advance()
	item := SelectItem{Column: t.text}
	if alias, ok, err := p.parseAlias(); err != nil {
		return SelectItem{}, err
	} else if ok {
		item.Alias = alias
	}
	return item, nil
}

// parseGroupItem parses a GROUP BY term: column or bin(column, width).
func (p *parser) parseGroupItem() (GroupItem, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return GroupItem{}, p.errf("expected column in GROUP BY, found %q", t.text)
	}
	if strings.EqualFold(t.text, "bin") && p.toks[p.i+1].kind == tokLParen {
		col, width, err := p.parseBinCall()
		if err != nil {
			return GroupItem{}, err
		}
		return GroupItem{Column: col, BinWidth: width}, nil
	}
	if reserved[strings.ToLower(t.text)] {
		return GroupItem{}, p.errf("expected column in GROUP BY, found keyword %q", t.text)
	}
	p.advance()
	return GroupItem{Column: t.text}, nil
}

// parseBinCall consumes bin(column, width) starting at the "bin"
// identifier.
func (p *parser) parseBinCall() (string, float64, error) {
	p.advance() // bin
	p.advance() // (
	col, err := p.expect(tokIdent)
	if err != nil {
		return "", 0, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return "", 0, err
	}
	wTok, err := p.expect(tokNumber)
	if err != nil {
		return "", 0, err
	}
	width, err := strconv.ParseFloat(wTok.text, 64)
	if err != nil || width <= 0 {
		return "", 0, p.errf("bin width must be a positive number, got %q", wTok.text)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return "", 0, err
	}
	return col.text, width, nil
}

func (p *parser) parseAlias() (string, bool, error) {
	if !p.atKeyword("as") {
		return "", false, nil
	}
	p.advance()
	a, err := p.expect(tokIdent)
	if err != nil {
		return "", false, err
	}
	return a.text, true, nil
}

// ---------------------------------------------------------------------
// Predicates

func (p *parser) parseOr() (engine.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []engine.Predicate{left}
	for p.atKeyword("or") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return engine.Or(children...), nil
}

func (p *parser) parseAnd() (engine.Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []engine.Predicate{left}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return engine.And(children...), nil
}

func (p *parser) parseUnary() (engine.Predicate, error) {
	if p.atKeyword("not") {
		p.advance()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return engine.Not(child), nil
	}
	if p.cur().kind == tokLParen {
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (engine.Predicate, error) {
	col, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if reserved[strings.ToLower(col.text)] {
		return nil, p.errf("expected column name, found keyword %q", col.text)
	}
	switch {
	case p.cur().kind == tokOp:
		opTok := p.cur()
		p.advance()
		op, err := parseCmpOp(opTok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return engine.Compare(col.text, op, lit), nil
	case p.atKeyword("in"):
		p.advance()
		return p.parseInList(col.text, false)
	case p.atKeyword("not"):
		p.advance()
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		return p.parseInList(col.text, true)
	case p.atKeyword("is"):
		p.advance()
		neg := false
		if p.atKeyword("not") {
			p.advance()
			neg = true
		}
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		if neg {
			return engine.IsNotNull(col.text), nil
		}
		return engine.IsNull(col.text), nil
	case p.atKeyword("between"):
		p.advance()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return engine.And(
			engine.Compare(col.text, engine.OpGe, lo),
			engine.Compare(col.text, engine.OpLe, hi),
		), nil
	default:
		return nil, p.errf("expected comparison operator after %q, found %q", col.text, p.cur().text)
	}
}

func (p *parser) parseInList(col string, negate bool) (engine.Predicate, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var vals []engine.Value
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		vals = append(vals, lit)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &engine.InPred{Column: col, Values: vals, Negate: negate}, nil
}

func (p *parser) parseLiteral() (engine.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return engine.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return engine.Value{}, p.errf("invalid number %q", t.text)
		}
		return engine.Float(f), nil
	case tokString:
		p.advance()
		return engine.String(t.text), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "null":
			p.advance()
			return engine.NullValue(engine.TypeString), nil
		case "timestamp":
			p.advance()
			s, err := p.expect(tokString)
			if err != nil {
				return engine.Value{}, err
			}
			ts, err := parseTimestamp(s.text)
			if err != nil {
				return engine.Value{}, p.errf("%v", err)
			}
			return engine.Time(ts), nil
		}
	}
	return engine.Value{}, p.errf("expected literal, found %q", t.text)
}

func parseTimestamp(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("cannot parse timestamp %q", s)
}

func parseCmpOp(s string) (engine.CmpOp, error) {
	switch s {
	case "=":
		return engine.OpEq, nil
	case "<>", "!=":
		return engine.OpNe, nil
	case "<":
		return engine.OpLt, nil
	case "<=":
		return engine.OpLe, nil
	case ">":
		return engine.OpGt, nil
	case ">=":
		return engine.OpGe, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}
