package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"seedb/internal/engine"
	"seedb/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Dir is the durable-storage directory: one wal.log plus one
	// <name>.snap per checkpointed table. Created if absent.
	Dir string
	// SyncEvery fsyncs the WAL once per N logged batches. 1 (the
	// default for values <= 0) fsyncs before every ack — full
	// durability; larger values trade a bounded window of acked-but-
	// unsynced batches for ingest throughput.
	SyncEvery int
	// SnapshotEvery checkpoints (snapshot dirty tables, then truncate
	// the WAL) once per N logged batches. Defaults to 256 for values
	// <= 0.
	SnapshotEvery int
}

const defaultSnapshotEvery = 256

// RecoveryInfo reports what a Store restored during Open. It is
// JSON-tagged because /api/stats republishes it under
// durability.recovery.
type RecoveryInfo struct {
	// SnapshotsLoaded counts tables restored from .snap files.
	SnapshotsLoaded int `json:"snapshotsLoaded"`
	// Tables names the tables restored from snapshots.
	Tables []string `json:"tables,omitempty"`
	// CorruptSnapshots names snapshot files that failed checksum or
	// parse and were sidelined (renamed to .corrupt) rather than
	// aborting boot.
	CorruptSnapshots []string `json:"corruptSnapshots,omitempty"`
	// ReplayedBatches counts WAL records applied on top of the
	// snapshot/base state; ReplayedRows is their row total.
	ReplayedBatches int `json:"replayedBatches"`
	ReplayedRows    int `json:"replayedRows"`
	// SkippedBatches counts WAL records whose table was missing or
	// whose pre-append version did not match the live table — records
	// already covered by a snapshot, or orphaned by a dropped table.
	SkippedBatches int `json:"skippedBatches"`
	// WALBytes is the valid log length after torn-tail truncation.
	WALBytes int64 `json:"walBytes"`
}

// Stats is a point-in-time durability report, shaped for /api/stats.
type Stats struct {
	// WALBytes is the current log length; it returns to zero at every
	// checkpoint (compaction truncates the covered log).
	WALBytes int64 `json:"walBytes"`
	// BatchesLogged counts append batches logged since Open.
	BatchesLogged int64 `json:"batchesLogged"`
	// ReplayedBatches and SkippedBatches describe the recovery that
	// produced this process's state (fixed after Open).
	ReplayedBatches int `json:"replayedBatches"`
	SkippedBatches  int `json:"skippedBatches"`
	// Checkpoints counts snapshot+compaction cycles since Open;
	// LastSnapshot is the wall-clock time of the latest one (zero if
	// none yet).
	Checkpoints  int64     `json:"checkpoints"`
	LastSnapshot time.Time `json:"lastSnapshot,omitzero"`
	// Syncs counts WAL fsyncs; FsyncMillis is an exponentially
	// weighted moving average (alpha 0.2) of their latency.
	Syncs       int64   `json:"syncs"`
	FsyncMillis float64 `json:"fsyncMillis"`
	// CheckpointErrors counts failed checkpoint attempts. Durability
	// is not lost — the WAL still covers every batch — but the log
	// cannot compact until one succeeds.
	CheckpointErrors int64 `json:"checkpointErrors"`
}

// Store is the durability engine: it restores tables from snapshots +
// WAL tail at Open, then logs every appended batch (implementing
// engine.AppendSink) and periodically checkpoints. Safe for concurrent
// use; the engine.Catalog serializes LogAppend calls in version order.
type Store struct {
	dir           string
	syncEvery     int
	snapshotEvery int

	mu        sync.Mutex
	wal       *log
	dirty     map[string]*engine.Table // tables with records in the current WAL
	unsynced  int                      // batches logged since the last fsync
	sinceSnap int                      // batches logged since the last checkpoint
	closed    bool

	batches     int64
	checkpoints int64
	syncs       int64
	checkpointE int64
	lastSnap    time.Time
	fsyncEWMA   float64
	replayed    int
	skipped     int

	// Observation-only latency histograms (nil until SetMetrics).
	fsyncHist      *obs.Histogram
	checkpointHist *obs.Histogram
}

// SetMetrics registers the store's counters with the metrics registry
// and turns on the fsync / checkpoint latency histograms. Purely
// observational: durability behavior is identical with or without it.
func (s *Store) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("seedb_wal_batches_total", "Append batches logged to the WAL.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.batches) })
	reg.CounterFunc("seedb_wal_syncs_total", "WAL fsyncs issued.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.syncs) })
	reg.CounterFunc("seedb_wal_checkpoints_total", "Snapshot+compaction cycles completed.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.checkpoints) })
	reg.CounterFunc("seedb_wal_checkpoint_errors_total", "Checkpoint attempts that failed (WAL still covers the batches).",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.checkpointE) })
	reg.GaugeFunc("seedb_wal_bytes", "Current WAL length (returns to zero at each checkpoint).",
		func() float64 { return float64(s.Stats().WALBytes) })
	fsyncH := reg.Histogram("seedb_wal_fsync_seconds", "WAL fsync latency.", obs.FsyncBuckets)
	ckptH := reg.Histogram("seedb_wal_checkpoint_seconds", "Checkpoint (sync + snapshot + compact) duration.", obs.DefBuckets)
	s.mu.Lock()
	s.fsyncHist, s.checkpointHist = fsyncH, ckptH
	s.mu.Unlock()
}

// Open recovers durable state from opts.Dir into cat and returns a
// Store ready to log new appends. Callers must register base tables
// (demo data, CSV loads) in cat BEFORE calling Open: snapshots replace
// same-named base tables wholesale, and WAL records then replay on top
// of whatever matches their pre-append version.
//
// Open truncates any torn WAL tail (a crash mid-append) and sidelines
// unreadable snapshot files as .corrupt instead of refusing to boot.
func Open(opts Options, cat *engine.Catalog) (*Store, *RecoveryInfo, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	s := &Store{
		dir:           opts.Dir,
		syncEvery:     max(1, opts.SyncEvery),
		snapshotEvery: opts.SnapshotEvery,
		dirty:         make(map[string]*engine.Table),
	}
	if s.snapshotEvery <= 0 {
		s.snapshotEvery = defaultSnapshotEvery
	}
	info := &RecoveryInfo{}
	if err := s.recover(cat, info); err != nil {
		return nil, nil, err
	}
	return s, info, nil
}

func (s *Store) recover(cat *engine.Catalog, info *RecoveryInfo) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("wal: reading data dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash mid-checkpoint leaves a half-written temp file;
			// the rename never happened, so the previous snapshot (or
			// none) is still authoritative.
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasSuffix(name, ".snap"):
			path := filepath.Join(s.dir, name)
			t, err := readSnapshot(path)
			if err != nil {
				info.CorruptSnapshots = append(info.CorruptSnapshots, name)
				_ = os.Rename(path, path+".corrupt")
				continue
			}
			cat.Drop(t.Name())
			if err := cat.Register(t); err != nil {
				return fmt.Errorf("wal: registering snapshot %s: %w", name, err)
			}
			info.SnapshotsLoaded++
			info.Tables = append(info.Tables, t.Name())
		}
	}
	sort.Strings(info.Tables)

	wal, recs, err := openLog(filepath.Join(s.dir, "wal.log"))
	if err != nil {
		return err
	}
	s.wal = wal
	info.WALBytes = wal.size
	for _, rec := range recs {
		t, err := cat.Table(rec.Table)
		if err != nil || t.Version() != rec.PrevVersion {
			info.SkippedBatches++
			continue
		}
		if _, err := t.Append(rec.Rows); err != nil {
			info.SkippedBatches++
			continue
		}
		info.ReplayedBatches++
		info.ReplayedRows += len(rec.Rows)
		// Replayed records live in the current WAL, so their tables
		// must be in the next checkpoint's snapshot set.
		s.dirty[rec.Table] = t
		s.sinceSnap++
	}
	s.replayed = info.ReplayedBatches
	s.skipped = info.SkippedBatches
	return nil
}

func readSnapshot(path string) (*engine.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return engine.ReadTable(f)
}

// LogAppend implements engine.AppendSink: it frames the batch into the
// WAL, fsyncs per the SyncEvery policy, and checkpoints per the
// SnapshotEvery policy. The engine calls it after the in-memory append
// succeeds and before the ingest ack, under the catalog's append lock.
func (s *Store) LogAppend(t *engine.Table, prevVersion uint64, rows [][]engine.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if err := s.wal.append(&Record{Table: t.Name(), PrevVersion: prevVersion, Rows: rows}); err != nil {
		return err
	}
	s.batches++
	s.dirty[t.Name()] = t
	s.unsynced++
	s.sinceSnap++
	if s.unsynced >= s.syncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.sinceSnap >= s.snapshotEvery {
		if err := s.checkpointLocked(); err != nil {
			// The batch IS durable — it was WAL-logged (and synced)
			// above — so the ack stands; the failure only delays
			// compaction, which the next batch will retry.
			s.checkpointE++
		}
	}
	return nil
}

func (s *Store) syncLocked() error {
	start := time.Now()
	if err := s.wal.sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	s.fsyncHist.Observe(time.Since(start).Seconds())
	ms := float64(time.Since(start).Microseconds()) / 1e3
	const alpha = 0.2
	if s.syncs == 0 {
		s.fsyncEWMA = ms
	} else {
		s.fsyncEWMA = alpha*ms + (1-alpha)*s.fsyncEWMA
	}
	s.syncs++
	s.unsynced = 0
	return nil
}

// Checkpoint snapshots every table with records in the current WAL,
// then truncates the WAL (compaction: the snapshots now cover it).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	ckptStart := time.Now()
	defer func() { s.checkpointHist.Observe(time.Since(ckptStart).Seconds()) }()
	// The WAL must be durable before the snapshot claims coverage:
	// if the snapshot writes fail mid-way, replay still has the tail.
	if err := s.syncLocked(); err != nil {
		return err
	}
	for _, t := range s.dirty {
		if err := s.writeSnapshotLocked(t); err != nil {
			return err
		}
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.dirty = make(map[string]*engine.Table)
	s.sinceSnap = 0
	s.checkpoints++
	s.lastSnap = time.Now()
	return nil
}

// CheckpointTable snapshots one table immediately, without compacting
// the WAL. The cluster layer uses it after wholesale table replacement
// (replica rebuild), where waiting for the batch-count cadence would
// leave the new contents covered by nothing.
func (s *Store) CheckpointTable(t *engine.Table) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if err := s.writeSnapshotLocked(t); err != nil {
		return err
	}
	// The dirty set may still point at the replaced table object (its
	// WAL records predate the swap). Re-aim it at the new table so the
	// next cadence checkpoint snapshots the live contents instead of
	// resurrecting the stale pre-replacement state over this snapshot.
	if _, ok := s.dirty[t.Name()]; ok {
		s.dirty[t.Name()] = t
	}
	return nil
}

// DropTable removes a table from durable coverage: its snapshot file
// is deleted and its dirty entry cleared, so neither a cadence
// checkpoint nor recovery resurrects it. The placement layer uses it
// when a worker loses ownership of a fragment — a durable worker then
// checkpoints only the placements it still owns. WAL records naming
// the table may remain in the current log; replay skips records whose
// table is not registered, so they are inert.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	delete(s.dirty, name)
	path := filepath.Join(s.dir, snapshotFileName(name))
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: removing snapshot for dropped table %q: %w", name, err)
	}
	return syncDir(s.dir)
}

// writeSnapshotLocked writes <name>.snap atomically: temp file, fsync,
// rename, fsync the directory so the rename itself is durable.
func (s *Store) writeSnapshotLocked(t *engine.Table) error {
	path := filepath.Join(s.dir, snapshotFileName(t.Name()))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	if err := engine.WriteTableSnapshot(f, t); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	return syncDir(s.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing data dir: %w", err)
	}
	return nil
}

// snapshotFileName percent-encodes every byte outside [A-Za-z0-9_-],
// so arbitrary table names (dots, slashes, spaces) map to exactly one
// safe file name with no path traversal.
func snapshotFileName(table string) string {
	var b strings.Builder
	for i := 0; i < len(table); i++ {
		c := table[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	b.WriteString(".snap")
	return b.String()
}

// Stats returns a point-in-time durability report.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALBytes:         s.wal.size,
		BatchesLogged:    s.batches,
		ReplayedBatches:  s.replayed,
		SkippedBatches:   s.skipped,
		Checkpoints:      s.checkpoints,
		LastSnapshot:     s.lastSnap,
		Syncs:            s.syncs,
		FsyncMillis:      s.fsyncEWMA,
		CheckpointErrors: s.checkpointE,
	}
}

// Close fsyncs and closes the WAL. The store logs nothing afterwards;
// a crash-simulating test simply abandons the store without calling
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.sync(); err != nil {
		s.wal.close()
		return err
	}
	return s.wal.close()
}
