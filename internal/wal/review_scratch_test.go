package wal

import (
	"testing"

	"seedb/internal/engine"
)

// Reproduce: replica rebuild (ReplaceTable path = Drop+Register+CheckpointTable)
// followed by a cadence checkpoint triggered by appends to another table.
func TestReviewStaleDirtyPointerAfterReplace(t *testing.T) {
	dir := t.TempDir()
	cat := engine.NewCatalog()
	schema := engine.Schema{{Name: "g", Type: engine.TypeString}, {Name: "v", Type: engine.TypeFloat}}
	a, _ := engine.NewTable("a", schema)
	b, _ := engine.NewTable("b", schema)
	if err := cat.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(b); err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(Options{Dir: dir, SnapshotEvery: 100}, cat)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetAppendSink(s)

	row := func(g string, v float64) []engine.Value {
		return []engine.Value{engine.String(g), engine.Float(v)}
	}
	// 1. Ingest into "a" → dirty[a] = old a.
	if _, err := cat.Append(a, [][]engine.Value{row("old", 1)}); err != nil {
		t.Fatal(err)
	}
	// 2. Replica rebuild of "a": new table object, new contents.
	a2, _ := engine.NewTable("a", schema)
	if _, err := a2.Append([][]engine.Value{row("new", 42), row("new", 43)}); err != nil {
		t.Fatal(err)
	}
	cat.Drop("a")
	if err := cat.Register(a2); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointTable(a2); err != nil {
		t.Fatal(err)
	}
	// 3. A cadence checkpoint fires (here forced) due to other traffic.
	if _, err := cat.Append(b, [][]engine.Value{row("x", 9)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// 4. Crash + recover: what does "a" hold?
	cat2 := engine.NewCatalog()
	s2, info, err := Open(Options{Dir: dir}, cat2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra, err := cat2.Table("a")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery: %+v", info)
	t.Logf("recovered a rows=%d (want 2 from rebuilt replica)", ra.NumRows())
	if ra.NumRows() != 2 {
		t.Fatalf("recovered stale replica: a has %d rows, want 2", ra.NumRows())
	}
}
