package wal

import (
	"os"
	"path/filepath"
	"testing"

	"seedb/internal/engine"
)

// DropTable is the durability half of table removal (the placement
// layer leans on it when a worker loses ownership of a fragment): the
// table's snapshot must be removed so a restart does not resurrect
// data the coordinator believes gone.
func TestDropTableRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{SyncEvery: 1, SnapshotEvery: 4})

	// A "keep" table rides along to prove the drop has no collateral.
	keep := engine.MustNewTable("keep", testSchema())
	if err := cat.Register(keep); err != nil {
		t.Fatal(err)
	}
	// keep batches 1-3, live batches 4-6: the checkpoint fires at batch
	// 4 (SnapshotEvery=4), leaving live's last two batches as the WAL
	// tail — the resurrection vector the drop must neutralize.
	for k := 0; k < 3; k++ {
		if _, err := cat.Append(keep, testBatch(10+k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3; k++ {
		if _, err := cat.Append(live, testBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "live.snap")); err != nil {
		t.Fatalf("precondition: live snapshot should exist: %v", err)
	}
	keepHash := contentHash(t, keep)

	// The DB.DropTable sequence: catalog first, then durable state.
	cat.Drop("live")
	if err := s.DropTable("live"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "live.snap")); !os.IsNotExist(err) {
		t.Fatalf("live snapshot still on disk after DropTable: %v", err)
	}
	// Idempotent: dropping a table with no snapshot is a no-op.
	if err := s.DropTable("live"); err != nil {
		t.Fatalf("second DropTable: %v", err)
	}
	if err := s.DropTable("never-existed"); err != nil {
		t.Fatalf("DropTable of unknown table: %v", err)
	}
	// No Close: crash after the drop.

	// Restart. Dropped tables are simply not registered (a placement
	// worker only re-registers fragments it is shipped), so recovery
	// must skip any WAL tail for "live" instead of resurrecting it —
	// while "keep" comes back byte-identical.
	cat2 := engine.NewCatalog()
	keep2 := engine.MustNewTable("keep", testSchema())
	if err := cat2.Register(keep2); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open(Options{Dir: dir}, cat2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat2.Table("live"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	if info.SkippedBatches == 0 {
		t.Fatalf("WAL tail for the dropped table should be skipped, got %+v", info)
	}
	kt, err := cat2.Table("keep")
	if err != nil {
		t.Fatal(err)
	}
	if got := contentHash(t, kt); got != keepHash {
		t.Fatalf("keep table perturbed by the drop: %s != %s", got, keepHash)
	}
}
