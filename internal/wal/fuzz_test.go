package wal

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"seedb/internal/engine"
)

// fuzzLogSeeds builds realistic WAL images: a multi-record log over
// every value type, plus the torn/corrupt shapes recovery must absorb.
func fuzzLogSeeds(tb testing.TB) [][]byte {
	frame := func(rec *Record) []byte {
		payload, err := encodeRecord(rec)
		if err != nil {
			tb.Fatal(err)
		}
		f := make([]byte, frameHeaderSize+len(payload))
		writeFrameHeader(f, payload)
		copy(f[frameHeaderSize:], payload)
		return f
	}
	rows := [][]engine.Value{
		{engine.String("a"), engine.Int(-7), engine.Float(1.5),
			{Kind: engine.TypeTime, I: 1409529600}},
		{engine.NullValue(engine.TypeString), engine.NullValue(engine.TypeInt),
			engine.NullValue(engine.TypeFloat), engine.NullValue(engine.TypeTime)},
	}

	var full bytes.Buffer
	full.Write(frame(&Record{Table: "orders", PrevVersion: 0, Rows: rows}))
	full.Write(frame(&Record{Table: "orders", PrevVersion: 1, Rows: rows[:1]}))
	full.Write(frame(&Record{Table: "läser/wave", PrevVersion: 41, Rows: nil}))
	valid := full.Bytes()

	torn := append(append([]byte(nil), valid...), valid[:frameHeaderSize+3]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	return [][]byte{
		valid,
		torn,
		flipped,
		valid[:7], // shorter than one header
		append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, valid[4:]...), // absurd length
		bytes.Repeat([]byte{0x00}, 32),                       // zero-length frames
	}
}

// fuzzValueEqual compares values at bit level: NaN payloads must round
// trip identically even though they compare unequal as floats.
func fuzzValueEqual(a, b engine.Value) bool {
	if a.Kind != b.Kind || a.Null != b.Null {
		return false
	}
	if a.Null {
		return true
	}
	switch a.Kind {
	case engine.TypeFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case engine.TypeString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}

// FuzzWALReplay: the record scanner must never panic on arbitrary
// bytes, must never claim a valid prefix longer than its input, and
// every record it does accept must survive an encode/decode round trip
// unchanged — the exact contract crash recovery relies on.
func FuzzWALReplay(f *testing.F) {
	for _, seed := range fuzzLogSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := scanRecords(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", validLen, len(data))
		}
		var reencoded bytes.Buffer
		for i, rec := range recs {
			payload, err := encodeRecord(rec)
			if err != nil {
				t.Fatalf("accepted record %d failed to re-encode: %v", i, err)
			}
			frame := make([]byte, frameHeaderSize+len(payload))
			writeFrameHeader(frame, payload)
			copy(frame[frameHeaderSize:], payload)
			reencoded.Write(frame)
		}
		back, backLen := scanRecords(reencoded.Bytes())
		if len(back) != len(recs) || backLen != int64(reencoded.Len()) {
			t.Fatalf("re-encoded log scanned to %d records / %d bytes, want %d / %d",
				len(back), backLen, len(recs), reencoded.Len())
		}
		for i := range recs {
			a, b := recs[i], back[i]
			if a.Table != b.Table || a.PrevVersion != b.PrevVersion || len(a.Rows) != len(b.Rows) {
				t.Fatalf("record %d changed shape across round trip", i)
			}
			for ri := range a.Rows {
				for ci := range a.Rows[ri] {
					if !fuzzValueEqual(a.Rows[ri][ci], b.Rows[ri][ci]) {
						t.Fatalf("record %d row %d col %d changed: %v vs %v",
							i, ri, ci, a.Rows[ri][ci], b.Rows[ri][ci])
					}
				}
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzWALReplay. Run with WAL_WRITE_CORPUS=1 after
// changing the record format; it is a no-op otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WAL_WRITE_CORPUS") == "" {
		t.Skip("set WAL_WRITE_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzLogSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
