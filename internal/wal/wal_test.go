package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seedb/internal/engine"
)

func testSchema() engine.Schema {
	return engine.Schema{
		{Name: "g", Type: engine.TypeString},
		{Name: "v", Type: engine.TypeFloat},
		{Name: "n", Type: engine.TypeInt},
	}
}

func testBatch(k int) [][]engine.Value {
	return [][]engine.Value{
		{engine.String("a"), engine.Float(float64(k)), engine.Int(int64(k))},
		{engine.String("b"), engine.NullValue(engine.TypeFloat), engine.Int(int64(-k))},
	}
}

// newStoreWithBase builds a catalog holding a fresh base table and
// opens a store over dir, wiring it as the catalog's append sink —
// the same sequence DB.EnableDurability performs.
func newStoreWithBase(t *testing.T, dir string, opts Options) (*engine.Catalog, *engine.Table, *Store, *RecoveryInfo) {
	t.Helper()
	cat := engine.NewCatalog()
	tb := engine.MustNewTable("live", testSchema())
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	opts.Dir = dir
	s, info, err := Open(opts, cat)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetAppendSink(s)
	// The snapshot may have replaced the base table instance.
	live, err := cat.Table("live")
	if err != nil {
		t.Fatal(err)
	}
	return cat, live, s, info
}

func contentHash(t *testing.T, tb *engine.Table) string {
	t.Helper()
	h, err := tb.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &Record{Table: "orders", PrevVersion: 41, Rows: testBatch(7)}
	payload, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != rec.Table || got.PrevVersion != rec.PrevVersion || len(got.Rows) != len(rec.Rows) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for ri := range rec.Rows {
		for ci := range rec.Rows[ri] {
			if !rec.Rows[ri][ci].Equal(got.Rows[ri][ci]) {
				t.Fatalf("row %d col %d: %v != %v", ri, ci, got.Rows[ri][ci], rec.Rows[ri][ci])
			}
		}
	}
}

func TestLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, err := openLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for k := 0; k < 5; k++ {
		if err := l.append(&Record{Table: "t", PrevVersion: uint64(k), Rows: testBatch(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = openLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("reopened log has %d records, want 5", len(recs))
	}
	for k, rec := range recs {
		if rec.PrevVersion != uint64(k) {
			t.Errorf("record %d has version %d", k, rec.PrevVersion)
		}
	}
}

// A crash mid-append leaves a torn frame; open must truncate it and
// keep every whole record before it.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := openLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := l.append(&Record{Table: "t", PrevVersion: uint64(k), Rows: testBatch(k)}); err != nil {
			t.Fatal(err)
		}
	}
	validSize := l.size
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"partial header": func(d []byte) []byte { return append(d, 0x2A, 0x00) },
		"partial frame":  func(d []byte) []byte { return append(d, 0x10, 0, 0, 0, 1, 2, 3, 4, 0xAA) },
		"flipped tail byte": func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[len(d)-1] ^= 0xFF
			return d
		},
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			torn := filepath.Join(t.TempDir(), "wal.log")
			if err := os.WriteFile(torn, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			l2, recs, err := openLog(torn)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.close()
			wantRecs := 3
			if name == "flipped tail byte" {
				wantRecs = 2 // the flip corrupts the last whole record
			}
			if len(recs) != wantRecs {
				t.Fatalf("recovered %d records, want %d", len(recs), wantRecs)
			}
			fi, err := os.Stat(torn)
			if err != nil {
				t.Fatal(err)
			}
			if name != "flipped tail byte" && fi.Size() != validSize {
				t.Errorf("torn tail not truncated: %d bytes, want %d", fi.Size(), validSize)
			}
			// Appends must resume cleanly after truncation.
			if err := l2.append(&Record{Table: "t", PrevVersion: 9, Rows: testBatch(9)}); err != nil {
				t.Fatal(err)
			}
			if err := l2.sync(); err != nil {
				t.Fatal(err)
			}
			_, recs2, err := openLog(torn)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs2) != wantRecs+1 {
				t.Errorf("after resume: %d records, want %d", len(recs2), wantRecs+1)
			}
		})
	}
}

// The core crash-recovery property: abandon a store without Close (a
// SIGKILL stand-in — every batch was fsync'd under SyncEvery=1), boot
// a fresh catalog over the same dir, and the recovered table must be
// byte-identical to the live one.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cat, live, _, _ := newStoreWithBase(t, dir, Options{SyncEvery: 1, SnapshotEvery: 1000})
	for k := 0; k < 7; k++ {
		if _, err := cat.Append(live, testBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	wantHash := contentHash(t, live)
	wantVersion := live.Version()
	// No Close: the store is simply abandoned, as a crash would.

	_, recovered, _, info := newStoreWithBase(t, dir, Options{})
	if info.ReplayedBatches != 7 {
		t.Errorf("replayed %d batches, want 7", info.ReplayedBatches)
	}
	if got := contentHash(t, recovered); got != wantHash {
		t.Errorf("recovered ContentHash %s != live %s", got, wantHash)
	}
	if recovered.Version() != wantVersion {
		t.Errorf("recovered version %d != live %d", recovered.Version(), wantVersion)
	}
	if recovered.NumRows() != 14 {
		t.Errorf("recovered %d rows, want 14", recovered.NumRows())
	}
}

// Checkpoints must compact the WAL and leave a snapshot that alone
// (plus any WAL tail) reproduces the live table.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{SnapshotEvery: 2})
	for k := 0; k < 5; k++ {
		if _, err := cat.Append(live, testBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Checkpoints != 2 {
		t.Errorf("checkpoints = %d, want 2 (5 batches, SnapshotEvery=2)", st.Checkpoints)
	}
	// One batch since the last checkpoint: the WAL holds exactly it.
	_, recs, err := openLog(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("post-compaction WAL holds %d records, want 1", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "live.snap")); err != nil {
		t.Errorf("snapshot file missing: %v", err)
	}
	wantHash := contentHash(t, live)

	_, recovered, _, info := newStoreWithBase(t, dir, Options{})
	if info.SnapshotsLoaded != 1 || info.ReplayedBatches != 1 {
		t.Errorf("recovery loaded %d snapshots, replayed %d batches; want 1 and 1", info.SnapshotsLoaded, info.ReplayedBatches)
	}
	if got := contentHash(t, recovered); got != wantHash {
		t.Errorf("snapshot+tail recovery diverged: %s != %s", got, wantHash)
	}
}

// A crash between snapshot publication and WAL truncation leaves the
// WAL full of records the snapshot already covers; the version check
// must skip them instead of double-applying.
func TestReplaySkipsSnapshotCoveredBatches(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{SnapshotEvery: 1000})
	for k := 0; k < 4; k++ {
		if _, err := cat.Append(live, testBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the table but "crash" before compaction: write the
	// snapshot through the store's own path, leaving wal.log intact.
	if err := s.CheckpointTable(live); err != nil {
		t.Fatal(err)
	}
	wantHash := contentHash(t, live)

	_, recovered, _, info := newStoreWithBase(t, dir, Options{})
	if info.SkippedBatches != 4 || info.ReplayedBatches != 0 {
		t.Errorf("skipped %d / replayed %d, want 4 / 0", info.SkippedBatches, info.ReplayedBatches)
	}
	if got := contentHash(t, recovered); got != wantHash {
		t.Errorf("double-apply detected: %s != %s", got, wantHash)
	}
}

// A crash mid-snapshot leaves a .tmp file; boot must discard it and
// fall back to the previous snapshot generation.
func TestCrashMidSnapshotDiscardsTemp(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{})
	if _, err := cat.Append(live, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantHash := contentHash(t, live)
	// Simulate the next checkpoint dying mid-write.
	tmp := filepath.Join(dir, "live.snap.tmp")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, recovered, _, _ := newStoreWithBase(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale temp snapshot not removed (err=%v)", err)
	}
	if got := contentHash(t, recovered); got != wantHash {
		t.Errorf("recovery after mid-snapshot crash diverged: %s != %s", got, wantHash)
	}
}

// A corrupt snapshot must be sidelined, not brick the boot.
func TestCorruptSnapshotSidelined(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "live.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, info := newStoreWithBase(t, dir, Options{})
	if len(info.CorruptSnapshots) != 1 || info.CorruptSnapshots[0] != "live.snap" {
		t.Fatalf("CorruptSnapshots = %v", info.CorruptSnapshots)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not sidelined: %v", err)
	}
}

// Records for dropped tables or stale versions are skipped, counted,
// and never block the records behind them.
func TestReplaySkipsOrphanedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := openLog(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	// An orphan (no such table), a stale version, then a good record.
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(l.append(&Record{Table: "ghost", PrevVersion: 0, Rows: testBatch(0)}))
	must(l.append(&Record{Table: "live", PrevVersion: 99, Rows: testBatch(1)}))
	must(l.append(&Record{Table: "live", PrevVersion: 0, Rows: testBatch(2)}))
	must(l.sync())
	must(l.close())

	_, recovered, _, info := newStoreWithBase(t, dir, Options{})
	if info.SkippedBatches != 2 || info.ReplayedBatches != 1 {
		t.Errorf("skipped %d / replayed %d, want 2 / 1", info.SkippedBatches, info.ReplayedBatches)
	}
	if recovered.NumRows() != 2 {
		t.Errorf("recovered %d rows, want 2", recovered.NumRows())
	}
}

func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{SyncEvery: 1, SnapshotEvery: 3})
	for k := 0; k < 4; k++ {
		if _, err := cat.Append(live, testBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.BatchesLogged != 4 {
		t.Errorf("BatchesLogged = %d", st.BatchesLogged)
	}
	if st.Checkpoints != 1 || st.LastSnapshot.IsZero() {
		t.Errorf("Checkpoints = %d, LastSnapshot = %v", st.Checkpoints, st.LastSnapshot)
	}
	if st.Syncs < 4 {
		t.Errorf("Syncs = %d, want >= 4 with SyncEvery=1", st.Syncs)
	}
	if st.WALBytes == 0 {
		t.Error("WALBytes = 0 with a batch since the last checkpoint")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogAppend(live, live.Version(), testBatch(9)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("LogAppend after Close = %v, want closed error", err)
	}
}

// Table names with filesystem-hostile bytes must map to safe snapshot
// file names and round trip through recovery.
func TestSnapshotFileNameEncoding(t *testing.T) {
	for name, want := range map[string]string{
		"orders":     "orders.snap",
		"../../etc":  "%2E%2E%2F%2E%2E%2Fetc.snap",
		"a b.c":      "a%20b%2Ec.snap",
		"läserwave":  "l%C3%A4serwave.snap",
		"UPPER_low9": "UPPER_low9.snap",
	} {
		if got := snapshotFileName(name); got != want {
			t.Errorf("snapshotFileName(%q) = %q, want %q", name, got, want)
		}
	}

	dir := t.TempDir()
	cat := engine.NewCatalog()
	tb := engine.MustNewTable("we ird/näme", testSchema())
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(Options{Dir: dir}, cat)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetAppendSink(s)
	if _, err := cat.Append(tb, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	cat2 := engine.NewCatalog()
	if _, _, err := Open(Options{Dir: dir}, cat2); err != nil {
		t.Fatal(err)
	}
	got, err := cat2.Table("we ird/näme")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Errorf("recovered %d rows, want 2", got.NumRows())
	}
}

// The durable ack contract: a sink error must surface to the
// Catalog.Append caller so nothing acks a lost batch.
func TestSinkErrorFailsAppend(t *testing.T) {
	dir := t.TempDir()
	cat, live, s, _ := newStoreWithBase(t, dir, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Append(live, testBatch(1)); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Errorf("append over closed store = %v, want not-durable error", err)
	}
}

func TestScanRecordsNeverReadsPastValidPrefix(t *testing.T) {
	var buf bytes.Buffer
	for k := 0; k < 3; k++ {
		payload, err := encodeRecord(&Record{Table: "t", PrevVersion: uint64(k), Rows: testBatch(k)})
		if err != nil {
			t.Fatal(err)
		}
		frame := make([]byte, frameHeaderSize+len(payload))
		writeFrameHeader(frame, payload)
		copy(frame[frameHeaderSize:], payload)
		buf.Write(frame)
	}
	data := buf.Bytes()
	recs, validLen := scanRecords(data)
	if len(recs) != 3 || validLen != int64(len(data)) {
		t.Fatalf("scan = %d records, %d valid bytes", len(recs), validLen)
	}
	// Corrupting any single byte must still yield a clean prefix.
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		recs, validLen := scanRecords(mut)
		if validLen > int64(len(mut)) {
			t.Fatalf("byte %d: valid prefix %d exceeds input", i, validLen)
		}
		if len(recs) > 3 {
			t.Fatalf("byte %d: scan invented records", i)
		}
	}
}
