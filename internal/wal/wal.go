// Package wal implements SeeDB's durable-storage layer: a write-ahead
// log of Table.Append batches plus periodic SDB2 snapshot checkpoints
// (engine.WriteTableSnapshot), giving crash-consistent recovery for
// the otherwise in-memory tables.
//
// The log is an append-only file of CRC-framed, length-prefixed
// records, one per ingest batch. Each record carries the table name,
// the table's PRE-append mutation version, and the typed rows. Replay
// applies a record only when the live table sits at exactly that
// version, so a snapshot that already covers the batch (or a replica
// that diverged) skips it instead of double-applying.
//
// Frame layout, little-endian:
//
//	length  uint32  payload byte count
//	crc32   uint32  IEEE checksum of the payload
//	payload
//
// Payload layout (uvarints; strings are uvarint length + bytes):
//
//	table        string
//	prevVersion  uvarint
//	nrows        uvarint
//	ncols        uvarint
//	values       row-major; kind byte, null byte, then the payload
//	             (8-byte LE for INT/FLOAT/TIMESTAMP, string otherwise)
//
// A torn tail — a partial frame from a crash mid-write — fails the
// length or CRC check; the scanner stops at the last whole record and
// Open truncates the file there, so the log never accumulates garbage
// between valid records.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"seedb/internal/engine"
)

// Record is one durably logged append batch.
type Record struct {
	// Table names the target table.
	Table string
	// PrevVersion is the table's mutation version immediately before
	// the batch was applied; replay applies the record only to a table
	// sitting at exactly this version.
	PrevVersion uint64
	// Rows are the appended rows, in schema order.
	Rows [][]engine.Value
}

// frameHeaderSize is the fixed prefix of every record: payload length
// plus payload checksum.
const frameHeaderSize = 8

// maxRecordBytes rejects absurd declared lengths before allocation; a
// single ingest batch far beyond this is operator error, and anything
// larger in the length field of a frame is corruption.
const maxRecordBytes = 1 << 30

// encodeRecord renders a record's payload (frame header excluded).
func encodeRecord(rec *Record) ([]byte, error) {
	buf := make([]byte, 0, 64+16*len(rec.Rows))
	buf = appendUvarint(buf, uint64(len(rec.Table)))
	buf = append(buf, rec.Table...)
	buf = appendUvarint(buf, rec.PrevVersion)
	buf = appendUvarint(buf, uint64(len(rec.Rows)))
	ncols := 0
	if len(rec.Rows) > 0 {
		ncols = len(rec.Rows[0])
	}
	buf = appendUvarint(buf, uint64(ncols))
	for ri, row := range rec.Rows {
		if len(row) != ncols {
			return nil, fmt.Errorf("wal: record row %d has %d values, row 0 has %d", ri, len(row), ncols)
		}
		for _, v := range row {
			var err error
			if buf, err = appendValue(buf, v); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func appendValue(buf []byte, v engine.Value) ([]byte, error) {
	switch v.Kind {
	case engine.TypeInt, engine.TypeFloat, engine.TypeString, engine.TypeTime:
	default:
		return nil, fmt.Errorf("wal: cannot log value of kind %d", v.Kind)
	}
	buf = append(buf, byte(v.Kind))
	if v.Null {
		return append(buf, 1), nil
	}
	buf = append(buf, 0)
	var tmp [8]byte
	switch v.Kind {
	case engine.TypeInt, engine.TypeTime:
		binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
		buf = append(buf, tmp[:]...)
	case engine.TypeFloat:
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		buf = append(buf, tmp[:]...)
	case engine.TypeString:
		buf = appendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	}
	return buf, nil
}

// byteReader walks a payload with bounds checking; every decode error
// is corruption, never a panic (the decoder fronts a fuzz target).
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("wal: %d bytes wanted at offset %d of %d", n, r.off, len(r.data))
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// decodeRecord parses one payload. It validates everything it
// allocates against the remaining byte count, so a corrupt length can
// never force an implausible allocation.
func decodeRecord(payload []byte) (*Record, error) {
	r := &byteReader{data: payload}
	nameLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nameLen > uint64(len(payload)) {
		return nil, fmt.Errorf("wal: record declares a %d-byte table name in a %d-byte payload", nameLen, len(payload))
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	rec := &Record{Table: string(name)}
	if rec.PrevVersion, err = r.uvarint(); err != nil {
		return nil, err
	}
	nrows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every value costs at least two bytes (kind + null flag), so a
	// row/column product the payload cannot back is corruption.
	if nrows > 0 && ncols == 0 {
		return nil, fmt.Errorf("wal: record declares %d rows of zero columns", nrows)
	}
	remaining := uint64(len(payload) - r.off)
	if ncols != 0 && (nrows > remaining/2/ncols) {
		return nil, fmt.Errorf("wal: record declares %d×%d values in %d bytes", nrows, ncols, remaining)
	}
	rec.Rows = make([][]engine.Value, int(nrows))
	for ri := range rec.Rows {
		row := make([]engine.Value, int(ncols))
		for ci := range row {
			if row[ci], err = r.readValue(); err != nil {
				return nil, err
			}
		}
		rec.Rows[ri] = row
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("wal: record has %d trailing bytes", len(payload)-r.off)
	}
	return rec, nil
}

func (r *byteReader) readValue() (engine.Value, error) {
	kind, err := r.byte()
	if err != nil {
		return engine.Value{}, err
	}
	typ := engine.Type(kind)
	switch typ {
	case engine.TypeInt, engine.TypeFloat, engine.TypeString, engine.TypeTime:
	default:
		return engine.Value{}, fmt.Errorf("wal: unknown value kind %d", kind)
	}
	nullFlag, err := r.byte()
	if err != nil {
		return engine.Value{}, err
	}
	switch nullFlag {
	case 1:
		return engine.NullValue(typ), nil
	case 0:
	default:
		return engine.Value{}, fmt.Errorf("wal: bad null flag %d", nullFlag)
	}
	switch typ {
	case engine.TypeInt, engine.TypeTime:
		b, err := r.bytes(8)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Value{Kind: typ, I: int64(binary.LittleEndian.Uint64(b))}, nil
	case engine.TypeFloat:
		b, err := r.bytes(8)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	default: // TypeString
		n, err := r.uvarint()
		if err != nil {
			return engine.Value{}, err
		}
		if n > uint64(len(r.data)-r.off) {
			return engine.Value{}, fmt.Errorf("wal: string of %d bytes exceeds payload", n)
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return engine.Value{}, err
		}
		return engine.String(string(b)), nil
	}
}

// scanRecords walks a log image and returns every whole, checksummed
// record plus the byte length of that valid prefix. A torn or corrupt
// tail simply ends the scan — by WAL discipline everything after the
// first bad frame is unreachable garbage.
func scanRecords(data []byte) (recs []*Record, validLen int64) {
	off := 0
	for {
		if off+frameHeaderSize > len(data) {
			return recs, int64(off)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordBytes || off+frameHeaderSize+int(length) > len(data) {
			return recs, int64(off)
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, int64(off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, int64(off)
		}
		recs = append(recs, rec)
		off += frameHeaderSize + int(length)
	}
}

// writeFrameHeader stamps the length+checksum prefix into frame[0:8].
func writeFrameHeader(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
}

// log is the on-disk append file. All methods are called under the
// Store mutex.
type log struct {
	f    *os.File
	size int64
	path string
}

// openLog opens (creating if absent) the log at path, scans it, and
// truncates any torn tail so appends resume cleanly after the last
// whole record. It returns the records of the valid prefix.
func openLog(path string) (*log, []*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: reading log: %w", err)
	}
	recs, validLen := scanRecords(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening log: %w", err)
	}
	if int64(len(data)) != validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking log end: %w", err)
	}
	return &log{f: f, size: validLen, path: path}, recs, nil
}

// append frames and writes one record; durability requires a sync.
func (l *log) append(rec *Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	writeFrameHeader(frame, payload)
	copy(frame[frameHeaderSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.size += int64(len(frame))
	return nil
}

func (l *log) sync() error { return l.f.Sync() }

// reset empties the log (compaction: every record is covered by the
// snapshots just written).
func (l *log) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating log: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: rewinding log: %w", err)
	}
	l.size = 0
	return l.f.Sync()
}

func (l *log) close() error { return l.f.Close() }
