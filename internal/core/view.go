// Package core implements SeeDB itself: view-space enumeration, the
// deviation-based utility metric, view-space pruning, the
// query-combining optimizer, the view processor, and top-k selection.
// It corresponds to the "SeeDB Backend" box of the paper's Figure 4
// (Metadata Collector → Query Generator → Optimizer → DBMS → View
// Processor), running on the embedded engine in internal/engine.
package core

import (
	"fmt"
	"strings"

	"seedb/internal/distance"
	"seedb/internal/engine"
)

// View is the paper's view triple (a, m, f): group by dimension
// attribute a and aggregate measure m with function f. "We represent
// V_i as a triple (a, m, f)" (§2).
type View struct {
	Dimension string         // a — the grouping attribute
	Measure   string         // m — the measure attribute ("" only for COUNT(*))
	Func      engine.AggFunc // f — the aggregate function

	// BinWidth > 0 bins a continuous (numeric or timestamp) dimension
	// into equi-width buckets before grouping — the "binning"
	// operation of the paper's §1 workflow. 0 groups raw values.
	BinWidth float64
}

// Key is a stable identifier for the view, usable as a map key.
func (v View) Key() string {
	k := v.Dimension + "\x00" + v.Measure + "\x00" + v.Func.String()
	if v.BinWidth > 0 {
		k += fmt.Sprintf("\x00bin%g", v.BinWidth)
	}
	return k
}

// dimLabel renders the dimension with its binning, e.g. "bin(price, 10)".
func (v View) dimLabel() string {
	if v.BinWidth > 0 {
		return fmt.Sprintf("bin(%s, %g)", v.Dimension, v.BinWidth)
	}
	return v.Dimension
}

// String renders the view in f(m) BY a form.
func (v View) String() string {
	m := v.Measure
	if m == "" {
		m = "*"
	}
	return fmt.Sprintf("%s(%s) BY %s", v.Func, m, v.dimLabel())
}

// AggSpec returns the engine aggregate spec for the view's f(m), with
// the given alias and optional filter.
func (v View) AggSpec(alias string, filter engine.Predicate) engine.AggSpec {
	return engine.AggSpec{Func: v.Func, Column: v.Measure, Filter: filter, Alias: alias}
}

// TargetSQL renders the target view query as SQL text (paper §2:
// SELECT a, f(m) FROM D_Q GROUP BY a). The rendering is for display
// and logging; execution goes through engine plans directly.
func (v View) TargetSQL(table string, predicate engine.Predicate) string {
	where := ""
	if predicate != nil {
		if s := predicate.String(); s != "TRUE" {
			where = " WHERE " + s
		}
	}
	m := v.Measure
	if m == "" {
		m = "*"
	}
	return fmt.Sprintf("SELECT %s, %s(%s) FROM %s%s GROUP BY %s",
		v.dimLabel(), v.Func, m, table, where, v.dimLabel())
}

// ComparisonSQL renders the comparison view query (same, on all of D).
func (v View) ComparisonSQL(table string) string {
	return v.TargetSQL(table, nil)
}

// Query is the analyst's input query Q: a selection over a single
// (fact) table. The rows matching Predicate form D_Q; the whole table
// is D.
type Query struct {
	Table     string
	Predicate engine.Predicate // nil selects the whole table (D_Q = D)
}

// String renders Q as SQL.
func (q Query) String() string {
	s := "SELECT * FROM " + q.Table
	if q.Predicate != nil {
		if p := q.Predicate.String(); p != "TRUE" {
			s += " WHERE " + p
		}
	}
	return s
}

// ViewData is a fully evaluated view: the aligned group labels, the
// raw aggregate vectors, and their normalized distributions for both
// the target (D_Q) and comparison (D) sides.
type ViewData struct {
	View View

	// Keys are the aligned group labels (union of both sides), sorted.
	Keys []string
	// TargetRaw / ComparisonRaw hold f(m) per group, zero when the
	// group is absent on that side.
	TargetRaw     []float64
	ComparisonRaw []float64
	// Target / Comparison are the normalized probability distributions.
	Target     distance.Distribution
	Comparison distance.Distribution

	// TargetAux / ComparisonAux carry the SUM and COUNT partials
	// backing an AVG view when it was computed in partition-mergeable
	// form (phased execution): averages cannot be merged across row
	// ranges directly, but their sum+count pairs can. nil for other
	// aggregates and for single-pass execution.
	TargetAux     *AvgAux
	ComparisonAux *AvgAux

	// Utility = S(P[V(D_Q)], P[V(D)]) for the configured metric.
	Utility float64
}

// AvgAux is the partition-mergeable form of an AVG view's side: per
// group the sum of the measure and the count of non-null values,
// aligned with ViewData.Keys.
type AvgAux struct {
	Sums   []float64
	Counts []float64
}

// MaxDeltaKey returns the group label with the largest absolute
// probability difference between target and comparison — the "value
// with maximum change" statistic the frontend shows per view. Equal
// deltas break toward the lexicographically smallest key, explicitly:
// Keys are sorted by construction (distance.Align), but operator
// annotations must stay stable even for a hand-built ViewData whose
// keys arrive in arbitrary order.
func (d *ViewData) MaxDeltaKey() (string, float64) {
	best, bestDelta := "", -1.0
	for i, k := range d.Keys {
		delta := d.Target[i] - d.Comparison[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > bestDelta || (delta == bestDelta && k < best) {
			best, bestDelta = k, delta
		}
	}
	return best, bestDelta
}

// Recommendation is one ranked view returned to the frontend.
type Recommendation struct {
	Rank int
	Data *ViewData

	// Represents lists dimension attributes whose views were pruned as
	// correlated with this view's dimension (this view stands in for
	// them).
	Represents []string

	// TargetSQL / ComparisonSQL are the display SQL texts.
	TargetSQL     string
	ComparisonSQL string

	// ChartType is the recommended visualization family ("bar",
	// "line", or "table"), scored by internal/viz from the view's
	// dimension cardinality, measure shape, and the exploration
	// operator's intent.
	ChartType string
}

// ViewScore is a (view, utility) pair; the processor records one per
// evaluated view so the demo can also show low-utility ("bad") views.
type ViewScore struct {
	View    View
	Utility float64
}

// PruneReason explains why a candidate view was eliminated before
// execution.
type PruneReason string

// Prune reasons reported in RunStats.
const (
	PrunedLowVariance PruneReason = "low-variance dimension"
	PrunedCorrelated  PruneReason = "correlated with representative dimension"
	PrunedRarelyUsed  PruneReason = "rarely accessed attribute"
	PrunedPhased      PruneReason = "confidence-interval pruning"
)

// RunStats reports what a Recommend call did — candidate counts,
// pruning decisions, and executor-level effort. The experiments print
// these to show each optimization's effect.
type RunStats struct {
	CandidateViews int
	ExecutedViews  int
	PrunedViews    map[PruneReason]int
	PrunedDims     map[string]PruneReason

	QueriesIssued int64
	TableScans    int64
	RowsRead      int64

	// Sampled reports whether queries ran against a Bernoulli sample.
	Sampled        bool
	SampleFraction float64

	// PlanSummary is a one-line description of the execution plan
	// (units, combine modes), e.g. "3 units: 2 shared-scan (5+4 dims),
	// 1 composite (2 dims)".
	PlanSummary string

	ElapsedMillis float64
}

func (s *RunStats) addPrune(reason PruneReason, dim string, views int) {
	if s.PrunedViews == nil {
		s.PrunedViews = map[PruneReason]int{}
	}
	if s.PrunedDims == nil {
		s.PrunedDims = map[string]PruneReason{}
	}
	s.PrunedViews[reason] += views
	if dim != "" {
		s.PrunedDims[dim] = reason
	}
}

// Result is the outcome of a Recommend call.
type Result struct {
	// Query echoes the analyst's query.
	Query Query
	// Metric is the distance metric used for utilities.
	Metric string
	// Operator is the exploration operator that scored the views
	// ("deviation", "similarity", "outlier", "typical", "trend").
	Operator string
	// TargetRowCount is |D_Q| (rows matching the predicate).
	TargetRowCount int64

	// Recommendations holds the top-k views by utility, rank order.
	Recommendations []Recommendation
	// WorstViews holds the lowest-utility evaluated views (the demo's
	// "bad views" pane), worst first.
	WorstViews []Recommendation
	// AllScores lists every evaluated view's utility, descending.
	AllScores []ViewScore

	Stats RunStats
}

// viewsByDimension groups views on their dimension attribute,
// preserving first-seen dimension order; this is the unit the
// optimizer combines ("combine multiple aggregates").
func viewsByDimension(views []View) (dims []string, byDim map[string][]View) {
	byDim = map[string][]View{}
	for _, v := range views {
		if _, ok := byDim[v.Dimension]; !ok {
			dims = append(dims, v.Dimension)
		}
		byDim[v.Dimension] = append(byDim[v.Dimension], v)
	}
	return dims, byDim
}

// describePredicate is a short label for logs.
func describePredicate(p engine.Predicate) string {
	if p == nil {
		return "<all rows>"
	}
	s := p.String()
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return strings.TrimSpace(s)
}
