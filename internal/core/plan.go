package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"seedb/internal/binpack"
	"seedb/internal/engine"
	"seedb/internal/stats"
)

// viewCols records the engine result columns that carry one view's
// data within an execution unit. In composite-key mode an AVG view
// needs auxiliary COUNT columns so marginal averages can be recomposed
// from partial sums.
type viewCols struct {
	view View
	// result column aliases
	tPrimary string // target side primary aggregate
	cPrimary string // comparison side primary aggregate
	tAux     string // target COUNT (composite AVG only)
	cAux     string // comparison COUNT (composite AVG only)
}

// execUnit is one schedulable piece of work: a set of dimensions whose
// views are computed together. Depending on the combine modes it
// lowers to one engine query (combined target+comparison), or a
// target/comparison query pair, each possibly carrying grouping sets
// (one per dimension) or a composite group-by key.
type execUnit struct {
	dims      []string
	composite bool       // composite-key marginalization required
	sets      [][]string // grouping sets (one per dim) when len(dims)>1 && !composite

	// aggsCombinedByDim holds both sides (comparison unfiltered,
	// target filtered) per dimension when CombineTargetComparison is
	// on; otherwise aggsSideByDim holds one side's specs per dimension
	// and the unit runs twice. Keeping the lists per dimension lets a
	// shared scan give each grouping set only its own aggregates.
	aggsCombinedByDim map[string][]engine.AggSpec
	aggsSideByDim     map[string][]engine.AggSpec

	bindings map[string][]viewCols // dim -> views computed by this unit

	// binWidths carries each binned dimension's width into the engine
	// queries (empty entries mean raw grouping).
	binWidths map[string]float64
}

// aggsFor returns the aggregate list for one dimension of the unit.
func (u *execUnit) aggsFor(dim string, combined bool) []engine.AggSpec {
	if combined {
		return u.aggsCombinedByDim[dim]
	}
	return u.aggsSideByDim[dim]
}

// allAggs concatenates every dimension's aggregates in dims order (for
// composite-key queries, which compute everything under one key).
func (u *execUnit) allAggs(combined bool) []engine.AggSpec {
	var out []engine.AggSpec
	for _, d := range u.dims {
		out = append(out, u.aggsFor(d, combined)...)
	}
	return out
}

// plan is the full execution plan for a Recommend call.
type plan struct {
	units []*execUnit
	// scanParallelism is the intra-query parallelism handed to the
	// engine for each unit (the across-unit parallelism is handled by
	// the dispatch pool).
	scanParallelism int
}

// summary renders the plan as a one-line human description.
func (p *plan) summary(combined bool) string {
	var single, shared, composite int
	var sharedDims, compositeDims int
	for _, u := range p.units {
		switch {
		case u.composite:
			composite++
			compositeDims += len(u.dims)
		case u.sets != nil:
			shared++
			sharedDims += len(u.dims)
		default:
			single++
		}
	}
	queriesPerUnit := 1
	if !combined {
		queriesPerUnit = 2
	}
	parts := []string{fmt.Sprintf("%d units (%d queries)", len(p.units), len(p.units)*queriesPerUnit)}
	if single > 0 {
		parts = append(parts, fmt.Sprintf("%d single-dim", single))
	}
	if shared > 0 {
		parts = append(parts, fmt.Sprintf("%d shared-scan covering %d dims", shared, sharedDims))
	}
	if composite > 0 {
		parts = append(parts, fmt.Sprintf("%d composite-key covering %d dims", composite, compositeDims))
	}
	return strings.Join(parts, ", ")
}

// decomposable reports whether a view's aggregate can be recomposed
// from composite-key partials: COUNT/SUM add, MIN/MAX take extrema,
// AVG = SUM/COUNT. VAR and STDDEV would need a sum-of-squares column
// and are excluded from composite packing by the planner.
func decomposable(f engine.AggFunc) bool {
	switch f {
	case engine.AggCount, engine.AggSum, engine.AggMin, engine.AggMax, engine.AggAvg:
		return true
	default:
		return false
	}
}

// buildPlan lowers the surviving views into execution units according
// to the optimizer options. It implements the three "View Query
// Optimizations" of §3.3: combine target+comparison (conditional
// aggregates, applied later when specs are materialized), combine
// multiple aggregates (units hold all views of a dimension), and
// combine multiple group-bys (units hold several dimensions, packed
// under the group budget via grouping sets or composite keys).
func buildPlan(views []View, ts *stats.TableStats, q Query, opts Options) (*plan, error) {
	dims, byDim := viewsByDimension(views)
	sort.Strings(dims)

	// Step 1: per-dimension view lists, split by aggregate sharing.
	type dimJob struct {
		dim   string
		views []View
	}
	var jobs []dimJob
	if opts.CombineAggregates {
		for _, d := range dims {
			jobs = append(jobs, dimJob{dim: d, views: byDim[d]})
		}
	} else {
		// Basic framework: one view per unit.
		for _, d := range dims {
			for _, v := range byDim[d] {
				jobs = append(jobs, dimJob{dim: d, views: []View{v}})
			}
		}
	}

	// Effective group-count estimate per dimension: binned dimensions
	// produce ~range/width buckets regardless of raw cardinality.
	binWidth := map[string]float64{}
	for _, d := range dims {
		for _, v := range byDim[d] {
			if v.BinWidth > 0 {
				binWidth[d] = v.BinWidth
			}
		}
	}
	card := func(dim string) float64 {
		cs, err := ts.Column(dim)
		if err != nil || cs.Distinct < 1 {
			return 1
		}
		if w := binWidth[dim]; w > 0 && cs.Max > cs.Min {
			bins := (cs.Max-cs.Min)/w + 2
			if float64(cs.Distinct) < bins {
				return float64(cs.Distinct + 1)
			}
			return bins
		}
		return float64(cs.Distinct + 1) // +1 for a possible NULL group
	}

	var units []*execUnit
	switch {
	case opts.CombineGroupBys == CombineNone || !opts.CombineAggregates || len(jobs) <= 1:
		// One unit per job. (Multi-group-by combining presupposes
		// aggregate combining; without it each view stays standalone.)
		for _, j := range jobs {
			units = append(units, newUnit([]string{j.dim}, map[string][]View{j.dim: j.views}, false))
		}

	case opts.CombineGroupBys == CombineGroupingSets:
		// Memory is the SUM of per-dimension group counts: pack
		// dimensions so Σcard ≤ GroupBudget.
		items := make([]binpack.Item, len(jobs))
		budget := float64(opts.GroupBudget)
		for i, j := range jobs {
			w := card(j.dim)
			if w > budget {
				w = budget // oversized dims get a dedicated unit
			}
			items[i] = binpack.Item{ID: j.dim, Weight: w}
		}
		packing, err := packItems(items, budget, opts.ExactPacking)
		if err != nil {
			return nil, err
		}
		byName := map[string][]View{}
		for _, j := range jobs {
			byName[j.dim] = j.views
		}
		for _, bin := range packing.Bins {
			unitDims := make([]string, len(bin))
			unitViews := map[string][]View{}
			for i, it := range bin {
				unitDims[i] = it.ID
				unitViews[it.ID] = byName[it.ID]
			}
			sort.Strings(unitDims)
			units = append(units, newUnit(unitDims, unitViews, false))
		}

	case opts.CombineGroupBys == CombineCompositeKey:
		// Memory is the PRODUCT of cardinalities: pack on log-weights
		// so Σlog(card) ≤ log(GroupBudget). Views whose aggregate is
		// not decomposable (VAR/STDDEV) fall back to dedicated units.
		byName := map[string][]View{}
		var fallback []dimJob
		var packable []dimJob
		for _, j := range jobs {
			var dec, rest []View
			for _, v := range j.views {
				if decomposable(v.Func) {
					dec = append(dec, v)
				} else {
					rest = append(rest, v)
				}
			}
			if len(rest) > 0 {
				fallback = append(fallback, dimJob{dim: j.dim, views: rest})
			}
			if len(dec) > 0 {
				packable = append(packable, dimJob{dim: j.dim, views: dec})
				byName[j.dim] = dec
			}
		}
		logBudget := math.Log(float64(opts.GroupBudget))
		items := make([]binpack.Item, len(packable))
		for i, j := range packable {
			w := math.Log(card(j.dim))
			if w <= 0 {
				w = 1e-9
			}
			if w > logBudget {
				w = logBudget
			}
			items[i] = binpack.Item{ID: j.dim, Weight: w}
		}
		packing, err := packItems(items, logBudget, opts.ExactPacking)
		if err != nil {
			return nil, err
		}
		for _, bin := range packing.Bins {
			unitDims := make([]string, len(bin))
			unitViews := map[string][]View{}
			for i, it := range bin {
				unitDims[i] = it.ID
				unitViews[it.ID] = byName[it.ID]
			}
			sort.Strings(unitDims)
			units = append(units, newUnit(unitDims, unitViews, len(unitDims) > 1))
		}
		for _, j := range fallback {
			units = append(units, newUnit([]string{j.dim}, map[string][]View{j.dim: j.views}, false))
		}

	default:
		return nil, fmt.Errorf("core: unknown combine mode %v", opts.CombineGroupBys)
	}

	// Step 2: materialize aggregate specs for every unit. Phased
	// execution needs every AVG carried as SUM+COUNT pairs so per-phase
	// partials merge exactly (composite units need the same rewrite to
	// marginalize).
	for _, u := range units {
		materializeAggs(u, q.Predicate, opts.CombineTargetComparison, opts.Phases > 1)
	}

	p := &plan{units: units, scanParallelism: 1}
	if len(units) < opts.Parallelism && len(units) > 0 {
		p.scanParallelism = (opts.Parallelism + len(units) - 1) / len(units)
	}
	return p, nil
}

func packItems(items []binpack.Item, capacity float64, exact bool) (binpack.Packing, error) {
	if len(items) == 0 {
		return binpack.Packing{}, nil
	}
	if exact {
		return binpack.BranchAndBound(items, capacity, 0)
	}
	return binpack.FirstFitDecreasing(items, capacity)
}

func newUnit(dims []string, views map[string][]View, composite bool) *execUnit {
	u := &execUnit{
		dims: dims, composite: composite,
		bindings:          map[string][]viewCols{},
		aggsCombinedByDim: map[string][]engine.AggSpec{},
		aggsSideByDim:     map[string][]engine.AggSpec{},
		binWidths:         map[string]float64{},
	}
	if len(dims) > 1 && !composite {
		u.sets = make([][]string, len(dims))
		for i, d := range dims {
			u.sets[i] = []string{d}
		}
	}
	for _, d := range dims {
		for _, v := range views[d] {
			u.bindings[d] = append(u.bindings[d], viewCols{view: v})
			if v.BinWidth > 0 {
				u.binWidths[d] = v.BinWidth
			}
		}
	}
	return u
}

// materializeAggs assigns result-column aliases and builds the
// AggSpec lists. When combine is true, each view contributes a
// comparison aggregate (unfiltered) and a target aggregate (filtered
// by the user predicate) to one query — the paper's "combine target
// and comparison view query" rewrite. Otherwise one side's spec list
// is built and the executor runs it twice.
//
// AVG views are rewritten to SUM + COUNT pairs whenever their partials
// must be recombined downstream: in composite mode (marginal averages)
// and under phased execution (per-phase merge).
func materializeAggs(u *execUnit, predicate engine.Predicate, combine, avgParts bool) {
	idx := 0
	for _, d := range u.dims {
		cols := u.bindings[d]
		for i := range cols {
			vc := &cols[i]
			v := vc.view
			vc.cPrimary = fmt.Sprintf("c%d", idx)
			vc.tPrimary = fmt.Sprintf("t%d", idx)

			compositeAvg := (u.composite || avgParts) && v.Func == engine.AggAvg
			primaryFunc := v.Func
			if compositeAvg {
				primaryFunc = engine.AggSum
				vc.cAux = fmt.Sprintf("cc%d", idx)
				vc.tAux = fmt.Sprintf("tc%d", idx)
			}

			if combine {
				u.aggsCombinedByDim[d] = append(u.aggsCombinedByDim[d],
					engine.AggSpec{Func: primaryFunc, Column: v.Measure, Alias: vc.cPrimary},
					engine.AggSpec{Func: primaryFunc, Column: v.Measure, Filter: predicate, Alias: vc.tPrimary},
				)
				if compositeAvg {
					u.aggsCombinedByDim[d] = append(u.aggsCombinedByDim[d],
						engine.AggSpec{Func: engine.AggCount, Column: v.Measure, Alias: vc.cAux},
						engine.AggSpec{Func: engine.AggCount, Column: v.Measure, Filter: predicate, Alias: vc.tAux},
					)
				}
			} else {
				// Side queries share aliases: the comparison run reads
				// cPrimary, the target run is the same query filtered
				// by the predicate; the executor renames on extract.
				u.aggsSideByDim[d] = append(u.aggsSideByDim[d],
					engine.AggSpec{Func: primaryFunc, Column: v.Measure, Alias: vc.cPrimary})
				if compositeAvg {
					u.aggsSideByDim[d] = append(u.aggsSideByDim[d],
						engine.AggSpec{Func: engine.AggCount, Column: v.Measure, Alias: vc.cAux})
				}
			}
			idx++
		}
		u.bindings[d] = cols
	}
}

// queryCount returns how many engine queries the unit will issue.
func (u *execUnit) queryCount(combine bool) int {
	if combine {
		return 1
	}
	return 2
}
