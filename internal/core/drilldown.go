package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"seedb/internal/engine"
)

// Drill-down (paper §1 step 4): once SeeDB recommends a view, the
// analyst can "further interact with the displayed views (e.g., by
// drilling down or rolling up)". DrillDown refines the analyst query
// with a group of a recommended view — Q' = Q AND (a = v), or the bin
// range for binned dimensions — and re-runs the recommendation
// pipeline on the narrower subset.

// GroupPredicate builds the predicate selecting one group of a view:
// equality for discrete dimensions, the half-open bin range
// [lo, lo+width) for binned ones, and IS NULL for the NULL group.
// The label must be one of the view's result keys (ViewData.Keys).
func GroupPredicate(v View, tb *engine.Table, label string) (engine.Predicate, error) {
	col, err := tb.Column(v.Dimension)
	if err != nil {
		return nil, err
	}
	if label == "NULL" {
		return engine.IsNull(v.Dimension), nil
	}
	val, err := parseLabel(col.Type(), label)
	if err != nil {
		return nil, fmt.Errorf("core: drill-down on %s: %w", v, err)
	}
	if v.BinWidth <= 0 {
		return engine.Eq(v.Dimension, val), nil
	}
	// Binned group: [lo, lo+width).
	switch col.Type() {
	case engine.TypeFloat:
		lo := val.F
		return engine.And(
			engine.Compare(v.Dimension, engine.OpGe, engine.Float(lo)),
			engine.Compare(v.Dimension, engine.OpLt, engine.Float(lo+v.BinWidth)),
		), nil
	case engine.TypeInt:
		lo := val.I
		w := int64(v.BinWidth)
		if w < 1 {
			w = 1
		}
		return engine.And(
			engine.Compare(v.Dimension, engine.OpGe, engine.Int(lo)),
			engine.Compare(v.Dimension, engine.OpLt, engine.Int(lo+w)),
		), nil
	case engine.TypeTime:
		lo := val.I
		w := int64(v.BinWidth)
		if w < 1 {
			w = 1
		}
		return engine.And(
			engine.Compare(v.Dimension, engine.OpGe, engine.Value{Kind: engine.TypeTime, I: lo}),
			engine.Compare(v.Dimension, engine.OpLt, engine.Value{Kind: engine.TypeTime, I: lo + w}),
		), nil
	default:
		return nil, fmt.Errorf("core: cannot drill into binned %v dimension", col.Type())
	}
}

// parseLabel converts a result key label back into a typed value.
// Labels come from Value.Format, so the round trip is exact for
// strings and integers and second-precision for timestamps.
func parseLabel(t engine.Type, label string) (engine.Value, error) {
	switch t {
	case engine.TypeString:
		return engine.String(label), nil
	case engine.TypeInt:
		i, err := strconv.ParseInt(label, 10, 64)
		if err != nil {
			return engine.Value{}, fmt.Errorf("parsing %q as INT: %w", label, err)
		}
		return engine.Int(i), nil
	case engine.TypeFloat:
		f, err := strconv.ParseFloat(label, 64)
		if err != nil {
			return engine.Value{}, fmt.Errorf("parsing %q as FLOAT: %w", label, err)
		}
		return engine.Float(f), nil
	case engine.TypeTime:
		ts, err := time.Parse(time.RFC3339, label)
		if err != nil {
			return engine.Value{}, fmt.Errorf("parsing %q as TIMESTAMP: %w", label, err)
		}
		return engine.Time(ts), nil
	default:
		return engine.Value{}, fmt.Errorf("unsupported label type %v", t)
	}
}

// RefineQuery builds the drilled-down analyst query: the original
// predicate conjoined with the group predicate for one group of a
// recommended view. Exposed so callers that schedule work by query
// signature (the service layer) can refine first and then treat the
// drill-down as an ordinary Recommend on the refined query.
func (e *Engine) RefineQuery(q Query, v View, label string) (Query, error) {
	tb, err := e.ex.Catalog().Table(q.Table)
	if err != nil {
		return Query{}, err
	}
	group, err := GroupPredicate(v, tb, label)
	if err != nil {
		return Query{}, err
	}
	refined := Query{Table: q.Table}
	if q.Predicate != nil {
		refined.Predicate = engine.And(q.Predicate, group)
	} else {
		refined.Predicate = group
	}
	return refined, nil
}

// DrillDown re-runs Recommend on the subset refined by one group of a
// previously recommended view. The original query's predicate is
// conjoined with the group predicate; the drilled dimension joins the
// excluded set automatically (it is now part of the selection).
func (e *Engine) DrillDown(ctx context.Context, q Query, v View, label string, opts Options) (*Result, error) {
	refined, err := e.RefineQuery(q, v, label)
	if err != nil {
		return nil, err
	}
	return e.Recommend(ctx, refined, opts)
}

// RollUp undoes the most recent drill-down: if the query's predicate
// is a conjunction, the last conjunct is removed and the broadened
// query is returned (with ok=true). A query that cannot be broadened —
// no predicate, or a non-conjunction predicate — comes back unchanged
// with ok=false; rolling all the way up yields the unfiltered table.
func RollUp(q Query) (Query, bool) {
	and, ok := q.Predicate.(*engine.AndPred)
	if !ok || len(and.Children) == 0 {
		return q, false
	}
	rest := and.Children[:len(and.Children)-1]
	broadened := Query{Table: q.Table}
	switch len(rest) {
	case 0:
		broadened.Predicate = nil
	case 1:
		broadened.Predicate = rest[0]
	default:
		broadened.Predicate = engine.And(append([]engine.Predicate(nil), rest...)...)
	}
	return broadened, true
}
