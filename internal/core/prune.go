package core

import (
	"sort"

	"seedb/internal/engine"
	"seedb/internal/stats"
)

// pruneOutcome describes the surviving views plus bookkeeping about
// what was dropped and who represents whom.
type pruneOutcome struct {
	views []View
	// representative dimension -> other dimensions it stands in for
	represents map[string][]string
}

// pruneViews applies the paper's three view-space pruning strategies
// in order: variance-based, correlated-attribute clustering, and
// access-frequency. Each strategy removes whole dimensions (and with
// them every view on that dimension), recording reasons in st.
func pruneViews(views []View, tb *engine.Table, ts *stats.TableStats, coll *stats.Collector, cat *engine.Catalog, opts Options, st *RunStats) (pruneOutcome, error) {
	out := pruneOutcome{views: views, represents: map[string][]string{}}

	if opts.PruneLowVariance {
		out.views = pruneLowVariance(out.views, ts, opts, st)
	}
	if opts.PruneCorrelated {
		var err error
		out.views, err = pruneCorrelated(out.views, tb, coll, cat, opts, st, out.represents)
		if err != nil {
			return out, err
		}
	}
	if opts.PruneRarelyAccessed {
		out.views = pruneRarelyAccessed(out.views, tb.Name(), cat, opts, st)
	}
	return out, nil
}

// pruneLowVariance drops dimensions whose value distribution is nearly
// degenerate: a single distinct value, or normalized entropy below the
// threshold ("dimension attributes with low variance are likely to
// produce views having low utility", §3.3). Entropy generalizes
// variance to categorical attributes: an attribute taking one value
// has entropy 0, a heavily skewed attribute is close to it.
func pruneLowVariance(views []View, ts *stats.TableStats, opts Options, st *RunStats) []View {
	dropped := map[string]bool{}
	kept := views[:0]
	for _, v := range views {
		if keep, seen := dimDecision(dropped, v.Dimension); seen {
			if keep {
				kept = append(kept, v)
			} else {
				st.addPrune(PrunedLowVariance, "", 1)
			}
			continue
		}
		cs, err := ts.Column(v.Dimension)
		keep := err == nil && cs.Distinct > 1 && cs.NormEntropy >= opts.VarianceMinEntropy
		dropped[v.Dimension] = !keep
		if keep {
			kept = append(kept, v)
		} else {
			st.addPrune(PrunedLowVariance, v.Dimension, 1)
		}
	}
	return kept
}

func dimDecision(m map[string]bool, dim string) (keep, seen bool) {
	drop, ok := m[dim]
	return !drop, ok
}

// pruneCorrelated clusters the surviving dimensions by Cramér's V and
// keeps one representative view-set per cluster ("SEEDB clusters
// attributes based on correlation and evaluates a representative view
// per cluster", §3.3). The representative is the most-accessed member
// (ties broken by name) so the kept attribute is the one analysts
// actually look at — e.g. full airport name over its abbreviation.
func pruneCorrelated(views []View, tb *engine.Table, coll *stats.Collector, cat *engine.Catalog, opts Options, st *RunStats, represents map[string][]string) ([]View, error) {
	dims, byDim := viewsByDimension(views)
	// Binned (continuous) dimensions are excluded from correlation
	// clustering: Cramér's V over thousands of raw numeric categories
	// is meaningless and quadratic in the distinct count.
	var clusterable []string
	for _, d := range dims {
		if len(byDim[d]) > 0 && byDim[d][0].BinWidth == 0 {
			clusterable = append(clusterable, d)
		}
	}
	dims = clusterable
	if len(dims) < 2 {
		return views, nil
	}
	clusters, err := coll.CorrelationClusters(tb, dims, opts.CorrelationThreshold)
	if err != nil {
		return nil, err
	}
	keepDim := map[string]bool{}
	clustered := map[string]bool{}
	for _, cluster := range clusters {
		rep := chooseRepresentative(cluster, tb.Name(), cat)
		keepDim[rep] = true
		for _, member := range cluster {
			clustered[member] = true
			if member != rep {
				represents[rep] = append(represents[rep], member)
				st.addPrune(PrunedCorrelated, member, 0)
			}
		}
		sort.Strings(represents[rep])
	}
	kept := views[:0]
	for _, v := range views {
		if keepDim[v.Dimension] || !clustered[v.Dimension] {
			kept = append(kept, v)
		} else {
			st.addPrune(PrunedCorrelated, "", 1)
		}
	}
	return kept, nil
}

func chooseRepresentative(cluster []string, table string, cat *engine.Catalog) string {
	best := cluster[0]
	bestCount := cat.AccessCount(table, best)
	for _, c := range cluster[1:] {
		n := cat.AccessCount(table, c)
		if n > bestCount || (n == bestCount && c < best) {
			best, bestCount = c, n
		}
	}
	return best
}

// pruneRarelyAccessed drops dimensions whose access count is below
// AccessKeepFraction of the hottest dimension's count ("SEEDB tracks
// access patterns ... to prune attributes that are rarely accessed",
// §3.3). It is a no-op until the table has accumulated
// AccessMinHistory column touches, so cold-start recommendations are
// never starved.
func pruneRarelyAccessed(views []View, table string, cat *engine.Catalog, opts Options, st *RunStats) []View {
	counts := cat.AccessCounts(table)
	var total, maxCount int64
	for _, n := range counts {
		total += n
		if n > maxCount {
			maxCount = n
		}
	}
	if total < opts.AccessMinHistory || maxCount == 0 {
		return views
	}
	cut := float64(maxCount) * opts.AccessKeepFraction
	decided := map[string]bool{}
	kept := views[:0]
	for _, v := range views {
		if keep, seen := dimDecision(decided, v.Dimension); seen {
			if keep {
				kept = append(kept, v)
			} else {
				st.addPrune(PrunedRarelyUsed, "", 1)
			}
			continue
		}
		keep := float64(counts[v.Dimension]) >= cut
		decided[v.Dimension] = !keep
		if keep {
			kept = append(kept, v)
		} else {
			st.addPrune(PrunedRarelyUsed, v.Dimension, 1)
		}
	}
	return kept
}
