package core

import (
	"fmt"
	"testing"

	"seedb/internal/engine"
	"seedb/internal/stats"
)

// rolesTable builds a table with a known mix of column roles.
func rolesTable(t *testing.T) (*engine.Table, *stats.TableStats) {
	t.Helper()
	tb := engine.MustNewTable("mix", engine.Schema{
		{Name: "dim_s", Type: engine.TypeString},
		{Name: "dim_i", Type: engine.TypeInt},     // low-cardinality int: dim AND measure
		{Name: "wide_s", Type: engine.TypeString}, // too many distinct values
		{Name: "meas_f", Type: engine.TypeFloat},
		{Name: "ts", Type: engine.TypeTime},
	})
	for i := 0; i < 600; i++ {
		_ = tb.AppendRow(
			engine.String(fmt.Sprintf("g%d", i%5)),
			engine.Int(int64(i%3)),
			engine.String(fmt.Sprintf("unique%d", i)),
			engine.Float(float64(i)),
			engine.Value{Kind: engine.TypeTime, I: int64(i % 4)},
		)
	}
	return tb, stats.Collect(tb)
}

func TestDetectRolesAutomatic(t *testing.T) {
	tb, ts := rolesTable(t)
	opts, _ := DefaultOptions().normalize()
	roles, err := detectRoles(ts, tb.Schema(), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// meas_f (600 distinct floats) becomes a BINNED dimension under the
	// default BinContinuousDims; wide_s stays excluded (strings cannot
	// bin).
	wantDims := []string{"dim_i", "dim_s", "meas_f", "ts"}
	if len(roles.dims) != len(wantDims) {
		t.Fatalf("dims = %v, want %v", roles.dims, wantDims)
	}
	for i, d := range wantDims {
		if roles.dims[i] != d {
			t.Errorf("dims[%d] = %q, want %q", i, roles.dims[i], d)
		}
	}
	if roles.binWidths["meas_f"] <= 0 {
		t.Errorf("meas_f should be binned, widths = %v", roles.binWidths)
	}
	if roles.binWidths["dim_s"] != 0 || roles.binWidths["dim_i"] != 0 {
		t.Errorf("low-cardinality dims must not be binned: %v", roles.binWidths)
	}
	wantMeasures := []string{"dim_i", "meas_f"}
	if len(roles.measures) != len(wantMeasures) {
		t.Fatalf("measures = %v, want %v", roles.measures, wantMeasures)
	}
	// wide_s excluded: 600 distinct > 500 default cap, not binnable.
	for _, d := range roles.dims {
		if d == "wide_s" {
			t.Error("wide_s must be excluded from dimensions")
		}
	}
	// With binning disabled, meas_f drops out again.
	noBin := opts
	noBin.BinContinuousDims = false
	roles2, err := detectRoles(ts, tb.Schema(), noBin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range roles2.dims {
		if d == "meas_f" {
			t.Error("binning disabled: meas_f must not be a dimension")
		}
	}
}

func TestBinWidthFor(t *testing.T) {
	cases := []struct {
		min, max float64
		bins     int
		typ      engine.Type
		want     float64
	}{
		{0, 120, 12, engine.TypeFloat, 10},
		{0, 100, 12, engine.TypeFloat, 10},  // 8.33 → 10
		{0, 50, 12, engine.TypeFloat, 5},    // 4.16 → 5
		{0, 24, 12, engine.TypeFloat, 2},    // 2 → 2
		{0, 1.2, 12, engine.TypeFloat, 0.1}, // 0.1 → 0.1
		{0, 3, 12, engine.TypeInt, 1},       // 0.25 floored to 1 for ints
		{5, 5, 12, engine.TypeFloat, 0},     // degenerate range
	}
	for _, c := range cases {
		if got := binWidthFor(c.min, c.max, c.bins, c.typ); got != c.want {
			t.Errorf("binWidthFor(%v,%v,%d,%v) = %v, want %v", c.min, c.max, c.bins, c.typ, got, c.want)
		}
	}
	if got := binWidthFor(0, 100, 0, engine.TypeFloat); got <= 0 {
		t.Error("bins clamp should still produce a width")
	}
}

func TestViewKeyIncludesBinWidth(t *testing.T) {
	a := View{Dimension: "x", Measure: "m", Func: engine.AggSum}
	b := View{Dimension: "x", Measure: "m", Func: engine.AggSum, BinWidth: 10}
	if a.Key() == b.Key() {
		t.Error("binned and raw views must have distinct keys")
	}
	if b.String() != "SUM(m) BY bin(x, 10)" {
		t.Errorf("binned String = %q", b.String())
	}
	sql := b.TargetSQL("t", nil)
	if sql != "SELECT bin(x, 10), SUM(m) FROM t GROUP BY bin(x, 10)" {
		t.Errorf("binned TargetSQL = %q", sql)
	}
}

func TestDetectRolesOverrides(t *testing.T) {
	tb, ts := rolesTable(t)
	opts, _ := DefaultOptions().normalize()
	opts.Dimensions = []string{"dim_s"}
	opts.Measures = []string{"meas_f"}
	roles, err := detectRoles(ts, tb.Schema(), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(roles.dims) != 1 || roles.dims[0] != "dim_s" {
		t.Errorf("dims = %v", roles.dims)
	}
	if len(roles.measures) != 1 || roles.measures[0] != "meas_f" {
		t.Errorf("measures = %v", roles.measures)
	}
	// Errors: unknown dimension, unknown measure, non-numeric measure.
	bad := opts
	bad.Dimensions = []string{"zz"}
	if _, err := detectRoles(ts, tb.Schema(), bad, nil); err == nil {
		t.Error("unknown dimension must error")
	}
	bad = opts
	bad.Measures = []string{"zz"}
	if _, err := detectRoles(ts, tb.Schema(), bad, nil); err == nil {
		t.Error("unknown measure must error")
	}
	bad = opts
	bad.Measures = []string{"dim_s"}
	if _, err := detectRoles(ts, tb.Schema(), bad, nil); err == nil {
		t.Error("string measure must error")
	}
}

func TestDetectRolesNoCandidates(t *testing.T) {
	tb := engine.MustNewTable("onlyfloat", engine.Schema{{Name: "f", Type: engine.TypeFloat}})
	_ = tb.AppendRow(engine.Float(1))
	ts := stats.Collect(tb)
	opts, _ := DefaultOptions().normalize()
	if _, err := detectRoles(ts, tb.Schema(), opts, nil); err == nil {
		t.Error("no dimensions must error")
	}
	tb2 := engine.MustNewTable("onlystring", engine.Schema{{Name: "s", Type: engine.TypeString}})
	_ = tb2.AppendRow(engine.String("x"))
	ts2 := stats.Collect(tb2)
	if _, err := detectRoles(ts2, tb2.Schema(), opts, nil); err == nil {
		t.Error("no measures must error")
	}
}

func TestEnumerateViewsCount(t *testing.T) {
	roles := attributeRoles{
		dims:     []string{"a1", "a2", "a3"},
		measures: []string{"m1", "m2"},
	}
	funcs := []engine.AggFunc{engine.AggSum, engine.AggCount}
	views := EnumerateViews(roles, funcs)
	if len(views) != 3*2*2 {
		t.Fatalf("views = %d, want 12", len(views))
	}
	// a==m skipping.
	roles2 := attributeRoles{dims: []string{"x", "y"}, measures: []string{"x", "z"}}
	views2 := EnumerateViews(roles2, []engine.AggFunc{engine.AggSum})
	// (x,z), (y,x), (y,z) — (x,x) skipped.
	if len(views2) != 3 {
		t.Fatalf("views = %v, want 3", views2)
	}
	for _, v := range views2 {
		if v.Dimension == v.Measure {
			t.Errorf("view %v groups and aggregates the same column", v)
		}
	}
}

// TestViewSpaceQuadraticGrowth checks the paper's claim that candidate
// views grow quadratically in the attribute count (E3's correctness
// side): doubling both dims and measures quadruples the view count.
func TestViewSpaceQuadraticGrowth(t *testing.T) {
	mkRoles := func(d, m int) attributeRoles {
		r := attributeRoles{}
		for i := 0; i < d; i++ {
			r.dims = append(r.dims, fmt.Sprintf("a%d", i))
		}
		for i := 0; i < m; i++ {
			r.measures = append(r.measures, fmt.Sprintf("m%d", i))
		}
		return r
	}
	funcs := []engine.AggFunc{engine.AggSum}
	n1 := len(EnumerateViews(mkRoles(5, 5), funcs))
	n2 := len(EnumerateViews(mkRoles(10, 10), funcs))
	n4 := len(EnumerateViews(mkRoles(20, 20), funcs))
	if n2 != 4*n1 || n4 != 4*n2 {
		t.Errorf("growth not quadratic: %d, %d, %d", n1, n2, n4)
	}
}

func TestViewStringsAndSQL(t *testing.T) {
	v := View{Dimension: "store", Measure: "amount", Func: engine.AggSum}
	if v.String() != "SUM(amount) BY store" {
		t.Errorf("String = %q", v.String())
	}
	pred := engine.Eq("product", engine.String("Laserwave"))
	want := "SELECT store, SUM(amount) FROM Sales WHERE product = 'Laserwave' GROUP BY store"
	if got := v.TargetSQL("Sales", pred); got != want {
		t.Errorf("TargetSQL = %q, want %q", got, want)
	}
	wantC := "SELECT store, SUM(amount) FROM Sales GROUP BY store"
	if got := v.ComparisonSQL("Sales"); got != wantC {
		t.Errorf("ComparisonSQL = %q", got)
	}
	cnt := View{Dimension: "store", Func: engine.AggCount}
	if got := cnt.TargetSQL("Sales", nil); got != "SELECT store, COUNT(*) FROM Sales GROUP BY store" {
		t.Errorf("count TargetSQL = %q", got)
	}
	q := Query{Table: "Sales", Predicate: pred}
	if q.String() != "SELECT * FROM Sales WHERE product = 'Laserwave'" {
		t.Errorf("Query.String = %q", q.String())
	}
	if (Query{Table: "Sales"}).String() != "SELECT * FROM Sales" {
		t.Error("no-predicate Query.String wrong")
	}
}

func TestViewKeyUniqueness(t *testing.T) {
	views := EnumerateViews(attributeRoles{
		dims:     []string{"a", "b"},
		measures: []string{"x", "y"},
	}, []engine.AggFunc{engine.AggSum, engine.AggAvg})
	seen := map[string]bool{}
	for _, v := range views {
		if seen[v.Key()] {
			t.Errorf("duplicate key %q", v.Key())
		}
		seen[v.Key()] = true
	}
}

func TestMaxDeltaKey(t *testing.T) {
	d := &ViewData{
		Keys:       []string{"a", "b", "c"},
		Target:     []float64{0.5, 0.3, 0.2},
		Comparison: []float64{0.2, 0.3, 0.5},
	}
	key, delta := d.MaxDeltaKey()
	if key != "a" || delta != 0.3 {
		t.Errorf("MaxDeltaKey = %q, %v", key, delta)
	}
	empty := &ViewData{}
	if k, _ := empty.MaxDeltaKey(); k != "" {
		t.Errorf("empty MaxDeltaKey = %q", k)
	}
}
