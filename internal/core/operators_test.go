package core

import (
	"math"
	"strings"
	"testing"

	"seedb/internal/distance"
	"seedb/internal/engine"
)

// mkVD hand-builds a ViewData for operator-level tests: Target is the
// normalized form of the raw vector, Comparison mirrors it (operators
// under test here never read the comparison side).
func mkVD(v View, keys []string, raw []float64) *ViewData {
	d := &ViewData{
		View:      v,
		Keys:      append([]string(nil), keys...),
		TargetRaw: append([]float64(nil), raw...),
	}
	d.Target = distance.Normalize(raw)
	d.ComparisonRaw = append([]float64(nil), raw...)
	d.Comparison = distance.Normalize(raw)
	return d
}

func TestOperatorRegistry(t *testing.T) {
	names := OperatorNames()
	for _, want := range []string{"deviation", "similarity", "outlier", "typical", "trend"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("operator %q not registered (have %v)", want, names)
		}
	}
	op, err := GetOperator("")
	if err != nil || op.Name() != "deviation" {
		t.Errorf(`GetOperator("") = %v, %v; want deviation`, op, err)
	}
	if _, err := GetOperator("bogus"); err == nil {
		t.Error("unknown operator should error")
	}
}

// TestDeviationScoreMatchesMetric pins the byte-identity contract: the
// deviation operator's utility is exactly the metric distance on the
// view's aligned distributions, computed in batch order.
func TestDeviationScoreMatchesMetric(t *testing.T) {
	for _, name := range []string{"emd", "js", "kl", "l1"} {
		metric, err := distance.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d := mkVD(View{Dimension: "d", Func: engine.AggCount}, []string{"a", "b"}, []float64{3, 1})
		d.Comparison = distance.Distribution{0.5, 0.5}
		want, err := metric.Distance(d.Target, d.Comparison)
		if err != nil {
			t.Fatal(err)
		}
		scored, err := (deviationOperator{}).Score(&ScoreContext{Metric: metric}, []*ViewData{d})
		if err != nil || len(scored) != 1 {
			t.Fatalf("%s: score: %v (%d views)", name, err, len(scored))
		}
		if scored[0].Utility != want {
			t.Errorf("%s: utility %v != metric distance %v (must be bit-identical)", name, scored[0].Utility, want)
		}
	}
}

func TestResampleMass(t *testing.T) {
	cases := []distance.Distribution{
		{1},
		{0.5, 0.5},
		{0.1, 0.2, 0.3, 0.4},
		{0.25, 0, 0.5, 0.25, 0},
	}
	for _, p := range cases {
		out := resampleMass(p, 64)
		if len(out) != 64 {
			t.Fatalf("resample(%v): len = %d", p, len(out))
		}
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Errorf("resample(%v): negative mass %v", p, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("resample(%v): mass %v, want 1 (mass-preserving)", p, sum)
		}
	}
	// Same length: exact copy.
	p := distance.Distribution{0.25, 0.75}
	out := resampleMass(p, 2)
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("same-length resample should be identity, got %v", out)
	}
	if resampleMass(nil, 64) != nil {
		t.Error("empty distribution should resample to nil")
	}
}

func TestSimilarityScore(t *testing.T) {
	metric, _ := distance.Get("l1")
	opts := Options{ProbeDimension: "p"}
	pv, err := opts.probeView()
	if err != nil {
		t.Fatal(err)
	}
	if pv.Func != engine.AggCount || pv.Dimension != "p" {
		t.Fatalf("default probe view = %v, want count(*) BY p", pv)
	}

	probe := mkVD(pv, []string{"x", "y"}, []float64{1, 0})
	same := mkVD(View{Dimension: "a", Func: engine.AggCount}, []string{"u", "v"}, []float64{1, 0})
	opposite := mkVD(View{Dimension: "b", Func: engine.AggCount}, []string{"u", "v"}, []float64{0, 1})

	scored, err := (similarityOperator{}).Score(
		&ScoreContext{Metric: metric, Opts: opts},
		[]*ViewData{probe, same, opposite})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 2 {
		t.Fatalf("probe must be excluded from ranking: got %d views", len(scored))
	}
	for _, d := range scored {
		if d.View.Key() == pv.Key() {
			t.Error("probe view leaked into the ranking")
		}
	}
	if same.Utility != 1 {
		t.Errorf("identical shape utility = %v, want 1", same.Utility)
	}
	if !(same.Utility > opposite.Utility) {
		t.Errorf("similar view must outrank dissimilar: %v vs %v", same.Utility, opposite.Utility)
	}

	// Missing probe data is an error, not a silent empty ranking.
	if _, err := (similarityOperator{}).Score(&ScoreContext{Metric: metric, Opts: opts}, []*ViewData{same}); err == nil {
		t.Error("missing probe view should error")
	} else if !strings.Contains(err.Error(), "probe view") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSiblingScore(t *testing.T) {
	metric, _ := distance.Get("l1")
	dim := func(m string) View { return View{Dimension: "d", Measure: m, Func: engine.AggSum} }
	v1 := mkVD(dim("m1"), []string{"a", "b"}, []float64{1, 0})
	v2 := mkVD(dim("m2"), []string{"a", "b"}, []float64{0, 1})
	v3 := mkVD(dim("m3"), []string{"a", "b"}, []float64{1, 1})
	// Singleton sibling group: no centroid to compare against → dropped.
	lone := mkVD(View{Dimension: "e", Func: engine.AggCount}, []string{"a"}, []float64{1})

	data := []*ViewData{v1, v2, v3, lone}
	scored, err := (siblingOperator{outlier: true}).Score(&ScoreContext{Metric: metric}, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 3 {
		t.Fatalf("singleton group must be dropped: got %d views", len(scored))
	}
	// Leave-one-out centroids (L1): v1 vs mean(v2,v3) = (0.25,0.75) → 1.5;
	// v3 vs mean(v1,v2) = (0.5,0.5) → 0.
	if math.Abs(v1.Utility-1.5) > 1e-12 {
		t.Errorf("outlier utility(v1) = %v, want 1.5", v1.Utility)
	}
	if v3.Utility != 0 {
		t.Errorf("outlier utility(v3) = %v, want 0 (it IS the centroid)", v3.Utility)
	}

	// Typicality inverts the ranking: the centroid-like view wins.
	v1b, v2b, v3b := mkVD(dim("m1"), v1.Keys, []float64{1, 0}), mkVD(dim("m2"), v2.Keys, []float64{0, 1}), mkVD(dim("m3"), v3.Keys, []float64{1, 1})
	if _, err := (siblingOperator{outlier: false}).Score(&ScoreContext{Metric: metric}, []*ViewData{v1b, v2b, v3b}); err != nil {
		t.Fatal(err)
	}
	if v3b.Utility != 1 {
		t.Errorf("typical utility(centroid view) = %v, want 1", v3b.Utility)
	}
	if !(v3b.Utility > v1b.Utility) {
		t.Errorf("typical must invert outlier ranking: %v vs %v", v3b.Utility, v1b.Utility)
	}
}

func TestKendallTrend(t *testing.T) {
	if tau, ok := kendallTrend([]string{"1", "2", "3", "4"}, []float64{1, 2, 4, 8}); !ok || tau != 1 {
		t.Errorf("increasing series: tau = %v, ok = %v; want 1", tau, ok)
	}
	if tau, ok := kendallTrend([]string{"1", "2", "3"}, []float64{9, 5, 2}); !ok || tau != -1 {
		t.Errorf("decreasing series: tau = %v, ok = %v; want -1", tau, ok)
	}
	// Month names carry intrinsic order.
	if tau, ok := kendallTrend([]string{"Jan", "Feb", "Mar"}, []float64{1, 2, 3}); !ok || tau != 1 {
		t.Errorf("month series: tau = %v, ok = %v; want 1", tau, ok)
	}
	if _, ok := kendallTrend([]string{"x", "y", "z"}, []float64{1, 2, 3}); ok {
		t.Error("nominal keys have no trend")
	}
	if _, ok := kendallTrend([]string{"1", "2"}, []float64{1, 2}); ok {
		t.Error("fewer than 3 groups have no trend")
	}
	if _, ok := kendallTrend([]string{"1", "1", "1"}, []float64{1, 2, 3}); ok {
		t.Error("all-tied positions have no trend")
	}

	// Through the operator: dropped views and |τ| utility.
	metric, _ := distance.Get("emd")
	up := mkVD(View{Dimension: "t", Func: engine.AggCount}, []string{"1", "2", "3"}, []float64{1, 2, 3})
	down := mkVD(View{Dimension: "t", Measure: "m", Func: engine.AggSum}, []string{"1", "2", "3"}, []float64{3, 2, 1})
	nominal := mkVD(View{Dimension: "n", Func: engine.AggCount}, []string{"x", "y", "z"}, []float64{1, 2, 3})
	scored, err := (trendOperator{}).Score(&ScoreContext{Metric: metric}, []*ViewData{up, down, nominal})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 2 {
		t.Fatalf("nominal view must be dropped: got %d", len(scored))
	}
	if up.Utility != 1 || down.Utility != 1 {
		t.Errorf("trend utility is |tau|: up=%v down=%v, want 1,1", up.Utility, down.Utility)
	}
}

// TestMaxDeltaKeyTieBreak pins the deterministic tie-break: equal
// absolute deltas resolve to the lexicographically smallest key even
// when the keys arrive unsorted.
func TestMaxDeltaKeyTieBreak(t *testing.T) {
	d := &ViewData{
		Keys:       []string{"b", "a"},
		Target:     distance.Distribution{0.6, 0.4},
		Comparison: distance.Distribution{0.4, 0.6},
	}
	k, delta := d.MaxDeltaKey()
	if k != "a" {
		t.Errorf("tie-break key = %q, want %q (lexicographically smallest)", k, "a")
	}
	if math.Abs(delta-0.2) > 1e-12 {
		t.Errorf("delta = %v, want 0.2", delta)
	}
}

func TestNormalizeOperator(t *testing.T) {
	o := DefaultOptions()
	o.Operator = "bogus"
	if _, err := o.normalize(); err == nil {
		t.Error("unknown operator must fail normalize")
	}

	o = DefaultOptions()
	o.Operator = "similarity"
	if _, err := o.normalize(); err == nil {
		t.Error("similarity without a probe must fail normalize")
	}
	o.ProbeDimension = "d"
	o.ProbeMeasure = "m" // measure without func is ambiguous
	if _, err := o.normalize(); err == nil {
		t.Error("probe measure without ProbeFunc must fail normalize")
	}
	o.ProbeFunc = "sum"
	n, err := o.normalize()
	if err != nil {
		t.Fatalf("valid similarity options: %v", err)
	}
	if n.CombineTargetComparison {
		t.Error("target-only operators must disable the combined target+comparison scan")
	}

	// Reference operators keep the combined-scan optimization.
	o = DefaultOptions()
	o.Operator = "deviation"
	n, err = o.normalize()
	if err != nil || !n.CombineTargetComparison {
		t.Errorf("deviation must keep CombineTargetComparison: %v, %v", n.CombineTargetComparison, err)
	}

	for _, name := range []string{"outlier", "typical", "trend"} {
		o = DefaultOptions()
		o.Operator = name
		n, err = o.normalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.CombineTargetComparison {
			t.Errorf("%s is target-only; combined scan must be off", name)
		}
	}
}
