package core

import (
	"context"

	"seedb/internal/engine"
)

// Backend is the seam between plan execution and the machinery that
// actually scans data. The optimizer lowers a Recommend call into
// engine queries; a Backend decides where those queries run — the
// in-process executor (the default), a scatter-gather pool of table
// shards, or remote worker nodes behind a coordinator (see
// internal/cluster). Every implementation must return results
// byte-identical to a single-node scan: the engine's exact
// partition-mergeable aggregation makes that achievable, and the
// golden shard tests enforce it.
type Backend interface {
	// Run executes one aggregation query.
	Run(ctx context.Context, q *engine.Query) (*engine.Result, error)
	// RunSharedScan executes one scan feeding every grouping set.
	RunSharedScan(ctx context.Context, q *engine.Query, gsets []engine.GroupingSet) ([]*engine.Result, error)
	// Signature identifies the backend's execution layout (e.g.
	// "local", "sharded(local,n=4)"). It is folded into exec-cache
	// keys: results are layout-invariant for in-process backends, but
	// a heterogeneous remote fleet could in principle run a different
	// build, so entries are never shared across layouts.
	Signature() string
}

// localBackend runs queries on the in-process executor; it is the
// default backend of every Engine.
type localBackend struct{ ex *engine.Executor }

func (b localBackend) Run(ctx context.Context, q *engine.Query) (*engine.Result, error) {
	return b.ex.Run(ctx, q)
}

func (b localBackend) RunSharedScan(ctx context.Context, q *engine.Query, gsets []engine.GroupingSet) ([]*engine.Result, error) {
	return b.ex.RunSharedScan(ctx, q, gsets)
}

func (b localBackend) Signature() string { return "local" }
