package core

import (
	"context"
	"fmt"
	"sync"

	"seedb/internal/distance"
	"seedb/internal/engine"
)

// runUnit executes one unit's queries and converts the engine results
// into aligned ViewData (the View Processor of Figure 4: results are
// normalized; utilities are assigned afterwards by the exploration
// operator's Score). cache, tb, and fingerprint are the snapshot taken
// by executePlan — passed together so a SetCache racing with an
// in-flight plan can never pair a live cache with an empty fingerprint
// (tb is nil exactly when the cache path is off). With a cache
// installed, identical queries (the comparison side of every request
// against the same table, repeated target queries, concurrent
// duplicates) skip the scan entirely. needsRef comes from the
// operator's data declaration: when false only the target-side query
// runs and its results are mirrored into the comparison slot.
func runUnit(ctx context.Context, e *Engine, be Backend, cache ExecCache, tb *engine.Table, fingerprint string, u *execUnit, q Query, opts Options, needsRef, sample bool, scanPar, rowLo, rowHi int) ([]*ViewData, error) {
	mkQuery := func(aggs []engine.AggSpec, where engine.Predicate) *engine.Query {
		eq := &engine.Query{Table: q.Table, Where: where, Aggs: aggs, Parallelism: scanPar, Shards: opts.Shards, RowLo: rowLo, RowHi: rowHi}
		if sample {
			eq.SampleFraction = opts.SampleFraction
			eq.SampleSeed = opts.SampleSeed
		}
		if u.sets == nil { // composite key or single dimension
			eq.GroupBy = u.dims
			if len(u.binWidths) > 0 {
				eq.BinWidths = u.binWidths
			}
		}
		return eq
	}

	// results per side: comparison first, then target (same slice when
	// the combined rewrite is active).
	var compRes, targRes []*engine.Result
	run := func(combined bool, where engine.Predicate) ([]*engine.Result, error) {
		var eq *engine.Query
		var gsets []engine.GroupingSet
		if u.sets != nil {
			// Shared scan: each dimension's grouping set computes only
			// its own aggregates.
			gsets = make([]engine.GroupingSet, len(u.dims))
			for i, d := range u.dims {
				gsets[i] = engine.GroupingSet{By: []string{d}, Aggs: u.aggsFor(d, combined)}
				if w, ok := u.binWidths[d]; ok {
					gsets[i].BinWidths = map[string]float64{d: w}
				}
			}
			eq = mkQuery(nil, where)
		} else {
			eq = mkQuery(u.allAggs(combined), where)
		}
		do := func() ([]*engine.Result, error) {
			if gsets != nil {
				return be.RunSharedScan(ctx, eq, gsets)
			}
			res, err := be.Run(ctx, eq)
			if err != nil {
				return nil, err
			}
			return []*engine.Result{res}, nil
		}
		if cache == nil || fingerprint == "" {
			return do()
		}
		return cache.GetOrCompute(ctx, execCacheKey(fingerprint, be.Signature(), opts.Operator, eq, gsets), func() ([]*engine.Result, bool, error) {
			res, err := do()
			if err != nil {
				return nil, false, err
			}
			// A mutation racing with this plan means the scan may have
			// observed newer rows than the key's fingerprint claims;
			// serve the results but never publish them under the old
			// version's content address. The executor resolves the
			// table by NAME per query, so a drop+reload must also be
			// caught: the catalog has to still hand back the snapshot
			// instance, not a replacement that the scan actually read.
			cur, lookupErr := e.ex.Catalog().Table(q.Table)
			cacheable := lookupErr == nil && cur == tb && tb.Fingerprint() == fingerprint
			return res, cacheable, nil
		})
	}

	switch {
	case opts.CombineTargetComparison:
		results, err := run(true, nil)
		if err != nil {
			return nil, fmt.Errorf("core: unit %v: %w", u.dims, err)
		}
		compRes, targRes = results, results
	case !needsRef:
		// Target-only operator: one scan of D_Q; the comparison slot
		// mirrors it so ViewData keeps its shape (Target == Comparison).
		results, err := run(false, q.Predicate)
		if err != nil {
			return nil, fmt.Errorf("core: unit %v target: %w", u.dims, err)
		}
		compRes, targRes = results, results
	default:
		var err error
		if compRes, err = run(false, nil); err != nil {
			return nil, fmt.Errorf("core: unit %v comparison: %w", u.dims, err)
		}
		if targRes, err = run(false, q.Predicate); err != nil {
			return nil, fmt.Errorf("core: unit %v target: %w", u.dims, err)
		}
	}

	var out []*ViewData
	for di, dim := range u.dims {
		cRes, tRes := compRes[resIndex(u, di)], targRes[resIndex(u, di)]
		for _, vc := range u.bindings[dim] {
			var tMap, cMap map[string]float64
			var tAux, cAux *avgAuxMaps
			if u.composite {
				dimPos := di // position of dim in the composite key
				cMap, cAux = marginalize(cRes, dimPos, vc, false, opts.CombineTargetComparison)
				tMap, tAux = marginalize(tRes, dimPos, vc, true, opts.CombineTargetComparison)
			} else {
				cMap, cAux = extractSide(cRes, vc, false, opts.CombineTargetComparison)
				tMap, tAux = extractSide(tRes, vc, true, opts.CombineTargetComparison)
			}
			vd := buildViewData(vc.view, tMap, cMap)
			if vd != nil {
				attachAvgAux(vd, tAux, cAux)
				out = append(out, vd)
			}
		}
	}
	return out, nil
}

// avgAuxMaps holds an AVG view's per-group sum and count partials for
// one side, keyed by group label.
type avgAuxMaps struct {
	sums   map[string]float64
	counts map[string]float64
}

// attachAvgAux aligns aux partials with the view's key order so phased
// execution can merge AVG views exactly.
func attachAvgAux(vd *ViewData, tAux, cAux *avgAuxMaps) {
	mk := func(a *avgAuxMaps) *AvgAux {
		if a == nil {
			return nil
		}
		out := &AvgAux{Sums: make([]float64, len(vd.Keys)), Counts: make([]float64, len(vd.Keys))}
		for i, k := range vd.Keys {
			out.Sums[i] = a.sums[k]
			out.Counts[i] = a.counts[k]
		}
		return out
	}
	vd.TargetAux, vd.ComparisonAux = mk(tAux), mk(cAux)
}

// resIndex maps a dim position to the result slice index: grouping
// sets produce one result per dim, single/composite produce one total.
func resIndex(u *execUnit, di int) int {
	if u.sets != nil {
		return di
	}
	return 0
}

// extractSide reads one view's per-group values out of a
// single-dimension result. When combined is true the target side lives
// in the FILTER column of the same result; otherwise both sides use
// the comparison aliases in their own result. An AVG view rewritten to
// SUM+COUNT (phased execution) is recomposed here, and its partials
// come back as aux.
func extractSide(res *engine.Result, vc viewCols, targetSide, combined bool) (map[string]float64, *avgAuxMaps) {
	col, auxCol := vc.cPrimary, vc.cAux
	if targetSide && combined {
		col, auxCol = vc.tPrimary, vc.tAux
	}
	ci := res.ColumnIndex(col)
	ai := -1
	if auxCol != "" {
		ai = res.ColumnIndex(auxCol)
	}
	out := make(map[string]float64, len(res.Rows))
	var aux *avgAuxMaps
	if ai >= 0 {
		aux = &avgAuxMaps{sums: make(map[string]float64, len(res.Rows)), counts: make(map[string]float64, len(res.Rows))}
	}
	for _, row := range res.Rows {
		v := row[ci]
		if v.Null {
			continue // group absent on this side
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		label := row[0].Format()
		if ai >= 0 {
			// Primary is the rewritten SUM; the view's value is AVG.
			cnt, _ := row[ai].AsFloat()
			if cnt <= 0 {
				continue
			}
			aux.sums[label] = f
			aux.counts[label] = cnt
			out[label] = f / cnt
			continue
		}
		out[label] = f
	}
	return out, aux
}

// marginalize recomposes one dimension's per-group aggregates from a
// composite-key result: COUNT/SUM accumulate, MIN/MAX take extrema,
// AVG divides accumulated SUM by accumulated COUNT. This is the
// backend post-processing step of the "combine multiple group-bys"
// optimization. For AVG views the sum/count partials are also returned
// so phased execution can merge them across row ranges.
func marginalize(res *engine.Result, dimPos int, vc viewCols, targetSide, combined bool) (map[string]float64, *avgAuxMaps) {
	primary := vc.cPrimary
	aux := vc.cAux
	if targetSide && combined {
		primary, aux = vc.tPrimary, vc.tAux
	}
	pi := res.ColumnIndex(primary)
	ai := -1
	if aux != "" {
		ai = res.ColumnIndex(aux)
	}
	f := vc.view.Func

	sums := map[string]float64{}
	counts := map[string]float64{}
	mins := map[string]float64{}
	maxs := map[string]float64{}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		label := row[dimPos].Format()
		v := row[pi]
		if v.Null {
			// Group exists in the composite result but this side has
			// no rows for it; COUNT would be 0 (not NULL), so only
			// SUM/MIN/MAX/AVG hit this path.
			continue
		}
		fv, ok := v.AsFloat()
		if !ok {
			continue
		}
		switch f {
		case engine.AggCount, engine.AggSum:
			sums[label] += fv
			seen[label] = true
		case engine.AggMin:
			if !seen[label] || fv < mins[label] {
				mins[label] = fv
			}
			seen[label] = true
		case engine.AggMax:
			if !seen[label] || fv > maxs[label] {
				maxs[label] = fv
			}
			seen[label] = true
		case engine.AggAvg:
			sums[label] += fv
			if ai >= 0 {
				if c, ok := row[ai].AsFloat(); ok {
					counts[label] += c
				}
			}
			seen[label] = true
		}
	}
	out := make(map[string]float64, len(seen))
	var avgAux *avgAuxMaps
	if f == engine.AggAvg {
		avgAux = &avgAuxMaps{sums: map[string]float64{}, counts: map[string]float64{}}
	}
	for label := range seen {
		switch f {
		case engine.AggCount, engine.AggSum:
			out[label] = sums[label]
		case engine.AggMin:
			out[label] = mins[label]
		case engine.AggMax:
			out[label] = maxs[label]
		case engine.AggAvg:
			if counts[label] > 0 {
				out[label] = sums[label] / counts[label]
				avgAux.sums[label] = sums[label]
				avgAux.counts[label] = counts[label]
			}
		}
	}
	// COUNT semantics: zero matching rows is mass 0, not absence, when
	// the group exists on the comparison side; absence handling is
	// performed by Align, so dropping zero-count labels here is
	// equivalent and keeps maps sparse.
	return out, avgAux
}

// buildViewData aligns the two sides and normalizes. Scoring is the
// exploration operator's job (ExplorationOperator.Score), which runs on
// the gathered batch — per-view utilities like deviation come out
// byte-identical to scoring here, and batch operators (outlier,
// similarity) get the cross-view context they need. A view with no
// groups on either side cannot be evaluated and yields nil.
func buildViewData(v View, tMap, cMap map[string]float64) *ViewData {
	if len(tMap) == 0 && len(cMap) == 0 {
		return nil
	}
	tDist, cDist, keys := distance.Align(tMap, cMap)
	tRaw := make([]float64, len(keys))
	cRaw := make([]float64, len(keys))
	for i, k := range keys {
		tRaw[i] = tMap[k]
		cRaw[i] = cMap[k]
	}
	return &ViewData{
		View:          v,
		Keys:          keys,
		TargetRaw:     tRaw,
		ComparisonRaw: cRaw,
		Target:        tDist,
		Comparison:    cDist,
	}
}

// executePlan dispatches units across a worker pool ("Parallel Query
// Execution", §3.3) and gathers evaluated (not yet scored) views.
func executePlan(ctx context.Context, e *Engine, p *plan, q Query, opts Options, needsRef, sample bool, rowLo, rowHi int) ([]*ViewData, error) {
	if len(p.units) == 0 {
		return nil, nil
	}
	// One cache + backend + fingerprint snapshot per plan: every unit
	// of this call caches against the same table version and runs on
	// the same backend, and a concurrent SetCache cannot hand later
	// units a cache without a fingerprint.
	be := e.Backend()
	cache := e.Cache()
	var tb *engine.Table
	var fingerprint string
	if cache != nil {
		var err error
		if tb, err = e.ex.Catalog().Table(q.Table); err != nil {
			return nil, err
		}
		fingerprint = tb.Fingerprint()
	}
	workers := opts.Parallelism
	if workers > len(p.units) {
		workers = len(p.units)
	}
	if workers <= 1 {
		var all []*ViewData
		for _, u := range p.units {
			vds, err := runUnit(ctx, e, be, cache, tb, fingerprint, u, q, opts, needsRef, sample, p.scanParallelism, rowLo, rowHi)
			if err != nil {
				return nil, err
			}
			all = append(all, vds...)
		}
		return all, nil
	}

	unitCh := make(chan *execUnit)
	results := make([][]*ViewData, len(p.units))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	idx := map[*execUnit]int{}
	for i, u := range p.units {
		idx[u] = i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := range unitCh {
				vds, err := runUnit(ctx, e, be, cache, tb, fingerprint, u, q, opts, needsRef, sample, p.scanParallelism, rowLo, rowHi)
				if err != nil {
					errs[w] = err
					continue
				}
				results[idx[u]] = vds
			}
		}(w)
	}
	for _, u := range p.units {
		unitCh <- u
	}
	close(unitCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []*ViewData
	for _, vds := range results {
		all = append(all, vds...)
	}
	return all, nil
}
