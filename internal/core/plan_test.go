package core

import (
	"fmt"
	"testing"

	"seedb/internal/engine"
	"seedb/internal/stats"
)

// planFixture: 6 dims of cardinality 10, 2 measures.
func planFixture(t *testing.T) (*engine.Table, *stats.TableStats) {
	t.Helper()
	schema := engine.Schema{}
	for i := 0; i < 6; i++ {
		schema = append(schema, engine.ColumnDef{Name: fmt.Sprintf("d%d", i), Type: engine.TypeString})
	}
	schema = append(schema,
		engine.ColumnDef{Name: "m0", Type: engine.TypeFloat},
		engine.ColumnDef{Name: "m1", Type: engine.TypeFloat})
	tb := engine.MustNewTable("f", schema)
	for r := 0; r < 300; r++ {
		vals := make([]engine.Value, 8)
		for i := 0; i < 6; i++ {
			vals[i] = engine.String(fmt.Sprintf("d%d_v%d", i, (r+i)%10))
		}
		vals[6] = engine.Float(float64(r))
		vals[7] = engine.Float(float64(r % 17))
		_ = tb.AppendRow(vals...)
	}
	return tb, stats.Collect(tb)
}

func fixtureViews(funcs ...engine.AggFunc) []View {
	if len(funcs) == 0 {
		funcs = []engine.AggFunc{engine.AggSum}
	}
	var views []View
	for i := 0; i < 6; i++ {
		for _, m := range []string{"m0", "m1"} {
			for _, f := range funcs {
				views = append(views, View{Dimension: fmt.Sprintf("d%d", i), Measure: m, Func: f})
			}
		}
	}
	return views
}

func planOpts(t *testing.T, mutate func(*Options)) Options {
	t.Helper()
	opts, err := DefaultOptions().normalize()
	if err != nil {
		t.Fatal(err)
	}
	mutate(&opts)
	return opts
}

func TestPlanBasicFramework(t *testing.T) {
	_, ts := planFixture(t)
	opts := planOpts(t, func(o *Options) {
		o.CombineAggregates = false
		o.CombineGroupBys = CombineNone
		o.CombineTargetComparison = false
	})
	views := fixtureViews()
	p, err := buildPlan(views, ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One unit per view; each runs 2 queries (target + comparison).
	if len(p.units) != len(views) {
		t.Fatalf("units = %d, want %d", len(p.units), len(views))
	}
	total := 0
	for _, u := range p.units {
		total += u.queryCount(false)
		if len(u.allAggs(false)) != 1 {
			t.Errorf("basic unit has %d aggs, want 1", len(u.allAggs(false)))
		}
		if u.composite || u.sets != nil {
			t.Error("basic unit must be single-dimension")
		}
	}
	if total != 2*len(views) {
		t.Errorf("query count = %d, want %d", total, 2*len(views))
	}
}

func TestPlanCombineAggregates(t *testing.T) {
	_, ts := planFixture(t)
	opts := planOpts(t, func(o *Options) {
		o.CombineAggregates = true
		o.CombineGroupBys = CombineNone
		o.CombineTargetComparison = true
	})
	views := fixtureViews(engine.AggSum, engine.AggCount)
	p, err := buildPlan(views, ts, Query{Table: "f", Predicate: engine.Eq("d0", engine.String("d0_v0"))}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.units) != 6 {
		t.Fatalf("units = %d, want 6 (one per dim)", len(p.units))
	}
	for _, u := range p.units {
		// 4 views per dim (2 measures × 2 funcs) × 2 sides = 8 specs.
		if len(u.allAggs(true)) != 8 {
			t.Errorf("unit %v has %d combined aggs, want 8", u.dims, len(u.allAggs(true)))
		}
		if u.queryCount(true) != 1 {
			t.Error("combined unit must run one query")
		}
	}
}

func TestPlanGroupingSetsPacking(t *testing.T) {
	_, ts := planFixture(t)
	// Budget of 22 groups: cardinality 10(+1 null) each → 2 dims per
	// unit → 3 units.
	opts := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineGroupingSets
		o.GroupBudget = 22
	})
	p, err := buildPlan(fixtureViews(), ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.units) != 3 {
		t.Fatalf("units = %d, want 3", len(p.units))
	}
	covered := map[string]bool{}
	for _, u := range p.units {
		if len(u.dims) != 2 {
			t.Errorf("unit dims = %v, want 2 per unit", u.dims)
		}
		if u.sets == nil || len(u.sets) != len(u.dims) {
			t.Errorf("unit %v must carry one grouping set per dim", u.dims)
		}
		for _, d := range u.dims {
			covered[d] = true
		}
	}
	if len(covered) != 6 {
		t.Errorf("covered dims = %d, want 6", len(covered))
	}
	// Huge budget: one unit with all 6 dims.
	opts.GroupBudget = 1000
	p2, err := buildPlan(fixtureViews(), ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.units) != 1 || len(p2.units[0].dims) != 6 {
		t.Errorf("huge budget should pack everything into one unit, got %d units", len(p2.units))
	}
}

func TestPlanCompositeKeyPacking(t *testing.T) {
	_, ts := planFixture(t)
	// log-budget packing: budget 150 groups, cards 11 each →
	// 11² = 121 ≤ 150 but 11³ > 150 → pairs.
	opts := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineCompositeKey
		o.GroupBudget = 150
	})
	p, err := buildPlan(fixtureViews(), ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.units) != 3 {
		t.Fatalf("units = %d, want 3 pairs", len(p.units))
	}
	for _, u := range p.units {
		if len(u.dims) != 2 || !u.composite {
			t.Errorf("unit %v composite=%v, want 2-dim composite", u.dims, u.composite)
		}
		if u.sets != nil {
			t.Error("composite units must not use grouping sets")
		}
	}
}

func TestPlanCompositeAvgRewrite(t *testing.T) {
	_, ts := planFixture(t)
	opts := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineCompositeKey
		o.GroupBudget = 1000
	})
	views := []View{
		{Dimension: "d0", Measure: "m0", Func: engine.AggAvg},
		{Dimension: "d1", Measure: "m0", Func: engine.AggSum},
	}
	p, err := buildPlan(views, ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.units) != 1 || !p.units[0].composite {
		t.Fatalf("expected one composite unit, got %+v", p.units)
	}
	u := p.units[0]
	// AVG view: SUM + COUNT on both sides = 4 specs; SUM view: 2 specs.
	if len(u.allAggs(true)) != 6 {
		t.Errorf("aggs = %d, want 6 (AVG→SUM+COUNT×2 + SUM×2)", len(u.allAggs(true)))
	}
	var avgCols viewCols
	for _, vc := range u.bindings["d0"] {
		if vc.view.Func == engine.AggAvg {
			avgCols = vc
		}
	}
	if avgCols.tAux == "" || avgCols.cAux == "" {
		t.Error("composite AVG must carry auxiliary count columns")
	}
	// SUM of the AVG-rewrite: primary spec must be SUM, not AVG.
	for _, a := range u.allAggs(true) {
		if a.Func == engine.AggAvg {
			t.Error("composite plans must not contain raw AVG specs")
		}
	}
}

func TestPlanCompositeVarFallback(t *testing.T) {
	_, ts := planFixture(t)
	opts := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineCompositeKey
		o.GroupBudget = 1000
	})
	views := []View{
		{Dimension: "d0", Measure: "m0", Func: engine.AggSum},
		{Dimension: "d0", Measure: "m0", Func: engine.AggVariance}, // not decomposable
		{Dimension: "d1", Measure: "m0", Func: engine.AggSum},
	}
	p, err := buildPlan(views, ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One composite unit (d0 SUM + d1 SUM) + one fallback unit (d0 VAR).
	var compositeUnits, fallbackUnits int
	for _, u := range p.units {
		if u.composite {
			compositeUnits++
		} else {
			fallbackUnits++
			for _, vcs := range u.bindings {
				for _, vc := range vcs {
					if vc.view.Func != engine.AggVariance {
						t.Errorf("fallback unit should carry only VAR views, got %v", vc.view)
					}
				}
			}
		}
	}
	if compositeUnits != 1 || fallbackUnits != 1 {
		t.Errorf("units: composite=%d fallback=%d, want 1/1", compositeUnits, fallbackUnits)
	}
}

func TestPlanScanParallelism(t *testing.T) {
	_, ts := planFixture(t)
	opts := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineGroupingSets
		o.GroupBudget = 1_000_000 // one unit
		o.Parallelism = 8
	})
	p, err := buildPlan(fixtureViews(), ts, Query{Table: "f"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.units) != 1 {
		t.Fatalf("units = %d", len(p.units))
	}
	if p.scanParallelism != 8 {
		t.Errorf("single unit should get the full scan parallelism, got %d", p.scanParallelism)
	}
	// Many units: scan parallelism stays 1.
	opts2 := planOpts(t, func(o *Options) {
		o.CombineGroupBys = CombineNone
		o.Parallelism = 4
	})
	p2, _ := buildPlan(fixtureViews(), ts, Query{Table: "f"}, opts2)
	if p2.scanParallelism != 1 {
		t.Errorf("many units: scan parallelism = %d, want 1", p2.scanParallelism)
	}
}

func TestDecomposable(t *testing.T) {
	yes := []engine.AggFunc{engine.AggCount, engine.AggSum, engine.AggMin, engine.AggMax, engine.AggAvg}
	for _, f := range yes {
		if !decomposable(f) {
			t.Errorf("%v should be decomposable", f)
		}
	}
	for _, f := range []engine.AggFunc{engine.AggVariance, engine.AggStddev} {
		if decomposable(f) {
			t.Errorf("%v should not be decomposable", f)
		}
	}
}

func TestCombineModeString(t *testing.T) {
	if CombineNone.String() != "none" ||
		CombineGroupingSets.String() != "grouping-sets" ||
		CombineCompositeKey.String() != "composite-key" {
		t.Error("mode names wrong")
	}
	if CombineMode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestOptionsNormalize(t *testing.T) {
	if _, err := (Options{}).normalize(); err == nil {
		t.Error("K=0 must error")
	}
	if _, err := (Options{K: 5, SampleFraction: 1.5}).normalize(); err == nil {
		t.Error("bad sample fraction must error")
	}
	if _, err := (Options{K: 5, Phases: -1}).normalize(); err == nil {
		t.Error("negative phases must error")
	}
	o, err := (Options{K: 5}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Metric != "emd" || o.MaxGroupsPerDim <= 0 || o.Parallelism <= 0 || len(o.AggFuncs) == 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
	o2, err := (Options{K: 1, Phases: 5}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o2.PhaseConfidence != 0.95 {
		t.Errorf("phase confidence default = %v", o2.PhaseConfidence)
	}
}
