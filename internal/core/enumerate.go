package core

import (
	"fmt"
	"math"
	"sort"

	"seedb/internal/engine"
	"seedb/internal/stats"
)

// attributeRoles holds the detected dimension and measure attributes
// of a table, plus bin widths for continuous dimensions.
type attributeRoles struct {
	dims      []string
	binWidths map[string]float64 // dimension -> bin width (0/absent = raw)
	measures  []string
}

// detectRoles classifies the table's columns into dimension attributes
// A (groupable: strings, ints, timestamps with bounded cardinality)
// and measure attributes M (numeric), honoring explicit overrides.
// A low-cardinality numeric column can play both roles, but a view
// never groups and aggregates the same column.
//
// Attributes referenced by the analyst's predicate are excluded from
// the dimension set (unless explicitly requested via opts.Dimensions):
// grouping the selected subset by its own selection attribute always
// yields a degenerate point-mass distribution whose "deviation" is
// maximal but tells the analyst nothing they didn't state themselves.
func detectRoles(ts *stats.TableStats, schema engine.Schema, opts Options, predicateCols []string) (attributeRoles, error) {
	excluded := map[string]bool{}
	for _, c := range predicateCols {
		excluded[c] = true
	}
	roles := attributeRoles{binWidths: map[string]float64{}}
	if len(opts.Dimensions) > 0 {
		for _, d := range opts.Dimensions {
			if _, err := ts.Column(d); err != nil {
				return roles, fmt.Errorf("core: dimension %w", err)
			}
		}
		roles.dims = append(roles.dims, opts.Dimensions...)
	} else {
		for _, def := range schema {
			if excluded[def.Name] {
				continue
			}
			cs, err := ts.Column(def.Name)
			if err != nil {
				return roles, err
			}
			if cs.IsDimension(opts.MaxGroupsPerDim) {
				roles.dims = append(roles.dims, def.Name)
				continue
			}
			// Continuous or over-wide numeric/timestamp columns become
			// binned dimensions (paper §1: "binning, grouping, and
			// aggregation") when binning is enabled.
			if opts.BinContinuousDims && cs.Distinct > 1 && cs.Max > cs.Min {
				switch def.Type {
				case engine.TypeFloat, engine.TypeInt, engine.TypeTime:
					width := binWidthFor(cs.Min, cs.Max, opts.TargetBins, def.Type)
					if width > 0 {
						roles.dims = append(roles.dims, def.Name)
						roles.binWidths[def.Name] = width
					}
				}
			}
		}
	}
	if len(opts.Measures) > 0 {
		for _, m := range opts.Measures {
			cs, err := ts.Column(m)
			if err != nil {
				return roles, fmt.Errorf("core: measure %w", err)
			}
			if !cs.IsMeasure() {
				return roles, fmt.Errorf("core: measure %q is %v, need a numeric column", m, cs.Type)
			}
		}
		roles.measures = append(roles.measures, opts.Measures...)
	} else {
		for _, def := range schema {
			cs, err := ts.Column(def.Name)
			if err != nil {
				return roles, err
			}
			if cs.IsMeasure() {
				roles.measures = append(roles.measures, def.Name)
			}
		}
	}
	if len(roles.dims) == 0 {
		return roles, fmt.Errorf("core: table %q has no usable dimension attributes (max %d groups)", ts.Table, opts.MaxGroupsPerDim)
	}
	if len(roles.measures) == 0 {
		return roles, fmt.Errorf("core: table %q has no numeric measure attributes", ts.Table)
	}
	sort.Strings(roles.dims)
	sort.Strings(roles.measures)
	return roles, nil
}

// binWidthFor picks an equi-width bin size covering [min,max] with
// roughly targetBins buckets, snapped to a "nice" 1/2/5 multiple so
// chart axes read naturally. Integer and timestamp widths are at
// least 1.
func binWidthFor(min, max float64, targetBins int, t engine.Type) float64 {
	if targetBins < 2 {
		targetBins = 2
	}
	raw := (max - min) / float64(targetBins)
	if raw <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var nice float64
	switch frac := raw / mag; {
	case frac <= 1:
		nice = mag
	case frac <= 2:
		nice = 2 * mag
	case frac <= 5:
		nice = 5 * mag
	default:
		nice = 10 * mag
	}
	if (t == engine.TypeInt || t == engine.TypeTime) && nice < 1 {
		nice = 1
	}
	return nice
}

// EnumerateViews generates the full candidate view space |A|×|M|×|F|
// (skipping a==m). This is the space the paper notes "increases as the
// square of the number of attributes" — every attribute pair
// contributes views.
func EnumerateViews(roles attributeRoles, funcs []engine.AggFunc) []View {
	views := make([]View, 0, len(roles.dims)*len(roles.measures)*len(funcs))
	for _, a := range roles.dims {
		for _, m := range roles.measures {
			if a == m {
				continue
			}
			for _, f := range funcs {
				views = append(views, View{Dimension: a, Measure: m, Func: f, BinWidth: roles.binWidths[a]})
			}
		}
	}
	return views
}
