package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"seedb/internal/distance"
	"seedb/internal/engine"
	"seedb/internal/stats"
	"seedb/internal/viz"
)

// Engine is the SeeDB backend: it owns an executor over a catalog plus
// a cached metadata collector, and serves Recommend calls.
type Engine struct {
	ex        *engine.Executor
	collector *stats.Collector

	// cache, when set, short-circuits exec-unit queries whose results
	// were already computed against the same table fingerprint (see
	// ExecCache). Installed by the service layer; unset means every
	// query scans. Held behind an atomic pointer so installing a cache
	// on a live engine cannot tear the two-word interface read in
	// concurrent Recommend calls.
	cache atomic.Pointer[ExecCache]

	// backend routes the optimizer's engine queries (see Backend); nil
	// means the in-process executor. Atomic for the same reason as
	// cache: a cluster backend may be installed on a live engine, and
	// in-flight plans keep the backend they started with.
	backend atomic.Pointer[Backend]
}

// New builds a SeeDB engine over an executor.
func New(ex *engine.Executor) *Engine {
	return &Engine{ex: ex, collector: stats.NewCollector()}
}

// Executor exposes the underlying engine executor (the frontend uses
// it for raw SQL and sample-data panes).
func (e *Engine) Executor() *engine.Executor { return e.ex }

// Collector exposes the metadata collector.
func (e *Engine) Collector() *stats.Collector { return e.collector }

// SetCache installs (or, with nil, removes) the exec-unit result
// cache. Safe to call on a live engine; in-flight plans keep the
// snapshot they started with.
func (e *Engine) SetCache(c ExecCache) {
	if c == nil {
		e.cache.Store(nil)
		return
	}
	e.cache.Store(&c)
}

// Cache returns the installed exec-unit result cache, if any.
func (e *Engine) Cache() ExecCache {
	if p := e.cache.Load(); p != nil {
		return *p
	}
	return nil
}

// SetBackend installs (or, with nil, removes) the execution backend.
// Safe on a live engine; plans already in flight keep the backend
// snapshot they started with.
func (e *Engine) SetBackend(b Backend) {
	if b == nil {
		e.backend.Store(nil)
		return
	}
	e.backend.Store(&b)
}

// Backend returns the active execution backend (the in-process
// executor when none was installed).
func (e *Engine) Backend() Backend {
	if p := e.backend.Load(); p != nil {
		return *p
	}
	return localBackend{ex: e.ex}
}

// Recommend runs the full SeeDB pipeline for the analyst query q:
// metadata collection, view enumeration, pruning, optimization,
// execution, scoring, and top-k selection (Problem 2.1 of the paper).
func (e *Engine) Recommend(ctx context.Context, q Query, opts Options) (*Result, error) {
	return e.RecommendProgress(ctx, q, opts, nil)
}

// RecommendProgress is Recommend with a progress seam: listener (when
// non-nil) receives an immutable ranking snapshot after every phase of
// phased execution and a final snapshot just before the call returns.
// The listener observes — it cannot change the returned Result, which
// is byte-identical to a plain Recommend with the same options.
func (e *Engine) RecommendProgress(ctx context.Context, q Query, opts Options, listener ProgressListener) (*Result, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	metric, err := distance.Get(opts.Metric)
	if err != nil {
		return nil, err
	}
	op, err := GetOperator(opts.Operator)
	if err != nil {
		return nil, err
	}
	tb, err := e.ex.Catalog().Table(q.Table)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	statsBaseQ, statsBaseS, statsBaseR := e.ex.Stats().Snapshot()

	// |D_Q|: validates the predicate and rejects empty targets early.
	targetRows, err := e.countTarget(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if targetRows == 0 {
		return nil, fmt.Errorf("core: query %q selects no rows; nothing to recommend", describePredicate(q.Predicate))
	}

	// Metadata Collector.
	ts := e.collector.Stats(tb)

	// Query Generator: enumerate then prune.
	var predicateCols []string
	if q.Predicate != nil {
		predicateCols = q.Predicate.Columns()
	}
	roles, err := detectRoles(ts, tb.Schema(), opts, predicateCols)
	if err != nil {
		return nil, err
	}
	views := EnumerateViews(roles, opts.AggFuncs)
	res := &Result{
		Query:          q,
		Metric:         metric.Name(),
		Operator:       op.Name(),
		TargetRowCount: targetRows,
	}
	res.Stats.CandidateViews = len(views)

	outcome, err := pruneViews(views, tb, ts, e.collector, e.ex.Catalog(), opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	if len(outcome.views) == 0 {
		return nil, fmt.Errorf("core: every candidate view was pruned; relax pruning options")
	}
	// Views the operator declares it cannot run without (similarity's
	// probe) are force-included: enumeration or pruning may have
	// skipped them, but the operator needs their data to score the rest.
	for _, rv := range op.RequiredViews(opts) {
		if err := validateRequiredView(rv, ts, op.Name()); err != nil {
			return nil, err
		}
		present := false
		for _, v := range outcome.views {
			if v.Key() == rv.Key() {
				present = true
				break
			}
		}
		if !present {
			outcome.views = append(outcome.views, rv)
		}
	}
	res.Stats.ExecutedViews = len(outcome.views)

	sample := opts.SampleFraction > 0 && tb.NumRows() >= opts.SampleMinRows
	res.Stats.Sampled = sample
	if sample {
		res.Stats.SampleFraction = opts.SampleFraction
	}

	// Optimizer + DBMS + View Processor.
	var data []*ViewData
	phasesUsed := 1
	if opts.Phases > 1 {
		data, phasesUsed, err = e.runPhased(ctx, outcome.views, ts, q, opts, op, metric, sample, &res.Stats, listener)
	} else {
		var p *plan
		p, err = buildPlan(outcome.views, ts, q, opts)
		if err == nil {
			res.Stats.PlanSummary = p.summary(opts.CombineTargetComparison)
			data, err = executePlan(ctx, e, p, q, opts, op.NeedsReference(), sample, 0, 0)
		}
	}
	if err != nil {
		return nil, err
	}

	// Exploration operator: score the evaluated batch. Both execution
	// paths hand the operator unscored views, so single-pass and phased
	// runs score through exactly one code path.
	data, err = op.Score(&ScoreContext{Metric: metric, Opts: opts}, data)
	if err != nil {
		return nil, err
	}

	// Rank and package.
	sort.SliceStable(data, func(i, j int) bool {
		if data[i].Utility != data[j].Utility {
			return data[i].Utility > data[j].Utility
		}
		return data[i].View.Key() < data[j].View.Key()
	})
	if listener != nil {
		listener(finalSnapshot(phasesUsed, phasesUsed, res.Stats.PrunedViews[PrunedPhased], data))
	}
	for _, d := range data {
		res.AllScores = append(res.AllScores, ViewScore{View: d.View, Utility: d.Utility})
	}
	k := opts.K
	if k > len(data) {
		k = len(data)
	}
	for i := 0; i < k; i++ {
		res.Recommendations = append(res.Recommendations, e.packageRec(i+1, data[i], q, outcome, op.Intent()))
	}
	if opts.IncludeWorst > 0 {
		w := opts.IncludeWorst
		if w > len(data)-k {
			w = len(data) - k
		}
		for i := 0; i < w; i++ {
			d := data[len(data)-1-i]
			res.WorstViews = append(res.WorstViews, e.packageRec(i+1, d, q, outcome, op.Intent()))
		}
	}

	qn, sn, rn := e.ex.Stats().Snapshot()
	res.Stats.QueriesIssued = qn - statsBaseQ
	res.Stats.TableScans = sn - statsBaseS
	res.Stats.RowsRead = rn - statsBaseR
	res.Stats.ElapsedMillis = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

func (e *Engine) packageRec(rank int, d *ViewData, q Query, outcome pruneOutcome, intent viz.Intent) Recommendation {
	return Recommendation{
		Rank:          rank,
		Data:          d,
		Represents:    outcome.represents[d.View.Dimension],
		TargetSQL:     d.View.TargetSQL(q.Table, q.Predicate),
		ComparisonSQL: d.View.ComparisonSQL(q.Table),
		// Chart-type recommendation (DataVizard-style): scored from the
		// view's dimension cardinality, its measure shape, and the
		// operator's presentation intent.
		ChartType: viz.RecommendType(viz.ChartInputs{Keys: d.Keys, Values: d.TargetRaw, Intent: intent}).String(),
	}
}

// validateRequiredView checks that an operator-required view references
// real columns before it is injected into the execution set.
func validateRequiredView(v View, ts *stats.TableStats, opName string) error {
	if _, err := ts.Column(v.Dimension); err != nil {
		return fmt.Errorf("core: %s operator: probe dimension %q: %w", opName, v.Dimension, err)
	}
	if v.Measure != "" {
		if _, err := ts.Column(v.Measure); err != nil {
			return fmt.Errorf("core: %s operator: probe measure %q: %w", opName, v.Measure, err)
		}
	}
	return nil
}

// countTarget runs SELECT COUNT(*) FROM D WHERE predicate. It goes
// through the backend, so in cluster mode even the validation count is
// scattered.
func (e *Engine) countTarget(ctx context.Context, q Query, opts Options) (int64, error) {
	res, err := e.Backend().Run(ctx, &engine.Query{
		Table:  q.Table,
		Where:  q.Predicate,
		Shards: opts.Shards,
		Aggs:   []engine.AggSpec{{Func: engine.AggCount, Alias: "n"}},
	})
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	return res.Rows[0][0].I, nil
}
