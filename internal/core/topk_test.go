package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mkViewData(i int, u float64) *ViewData {
	return &ViewData{
		View:    View{Dimension: fmt.Sprintf("d%d", i), Measure: "m", Func: 1},
		Utility: u,
	}
}

func TestTopKBasic(t *testing.T) {
	tk := newTopK(3)
	utilities := []float64{0.5, 0.9, 0.1, 0.7, 0.3}
	for i, u := range utilities {
		tk.Offer(u, mkViewData(i, u))
	}
	if tk.Len() != 3 {
		t.Fatalf("Len = %d", tk.Len())
	}
	got := tk.Sorted()
	want := []float64{0.9, 0.7, 0.5}
	for i, d := range got {
		if d.Utility != want[i] {
			t.Errorf("rank %d utility = %v, want %v", i, d.Utility, want[i])
		}
	}
	if tk.Len() != 0 {
		t.Error("Sorted should drain the heap")
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := newTopK(2)
	if _, full := tk.Threshold(); full {
		t.Error("empty collector is not full")
	}
	tk.Offer(0.5, mkViewData(0, 0.5))
	if _, full := tk.Threshold(); full {
		t.Error("half-full collector is not full")
	}
	tk.Offer(0.8, mkViewData(1, 0.8))
	th, full := tk.Threshold()
	if !full || th != 0.5 {
		t.Errorf("Threshold = %v,%v want 0.5,true", th, full)
	}
	// A better view evicts the weakest and raises the threshold.
	if !tk.Offer(0.9, mkViewData(2, 0.9)) {
		t.Error("better view must be accepted")
	}
	th, _ = tk.Threshold()
	if th != 0.8 {
		t.Errorf("Threshold after eviction = %v, want 0.8", th)
	}
	// A worse view is rejected.
	if tk.Offer(0.1, mkViewData(3, 0.1)) {
		t.Error("worse view must be rejected")
	}
}

func TestTopKZero(t *testing.T) {
	tk := newTopK(0)
	if tk.Offer(1.0, mkViewData(0, 1)) {
		t.Error("k=0 accepts nothing")
	}
	if got := tk.Sorted(); len(got) != 0 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw%10)
		n := rng.Intn(100)
		utilities := make([]float64, n)
		tk := newTopK(k)
		for i := 0; i < n; i++ {
			utilities[i] = rng.Float64()
			tk.Offer(utilities[i], mkViewData(i, utilities[i]))
		}
		got := tk.Sorted()
		sort.Sort(sort.Reverse(sort.Float64Slice(utilities)))
		want := utilities
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Utility != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	// Equal utilities: ties break on view key so results are stable.
	tk := newTopK(2)
	a := mkViewData(1, 0.5)
	b := mkViewData(2, 0.5)
	c := mkViewData(3, 0.5)
	tk.Offer(0.5, a)
	tk.Offer(0.5, b)
	tk.Offer(0.5, c)
	got := tk.Sorted()
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	// Lowest keys win ties (d1, d2 beat d3).
	if got[0].View.Dimension != "d1" || got[1].View.Dimension != "d2" {
		t.Errorf("tie-break order: %v, %v", got[0].View, got[1].View)
	}
}
