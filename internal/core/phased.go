package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"seedb/internal/distance"
	"seedb/internal/engine"
	"seedb/internal/obs"
	"seedb/internal/stats"
)

// Phased execution with confidence-interval pruning.
//
// The demo paper's challenge (d) asks SeeDB to "trade-off accuracy of
// visualizations or estimation of interestingness for reduced
// latency". This module implements the technique the authors developed
// for that trade-off (CONFIDENCE_INTERVAL pruning in the full SeeDB
// paper, TR/VLDB'15): the table is processed in N phases; after each
// phase every surviving view's utility is re-estimated from the rows
// seen so far, a Hoeffding-style confidence radius
//
//	ε_m = B · sqrt( (1 − m/N) · ln(2/δ) / (2m) )
//
// (m of N phases done, δ = 1-confidence) is attached, and views whose
// upper bound u+ε falls below the k-th best view's lower bound u_k−ε
// are discarded without reading the rest of the table. B is the
// empirical utility scale — the largest interim utility observed —
// rather than the metric's worst-case bound: worst-case EMD over g
// groups is g−1, which would make ε so wide nothing ever prunes, while
// real SeeDB utilities live well under the observed maximum. The
// (1 − m/N) factor is the finite-population correction: estimates are
// exact at m = N because phases partition the table. Aggregates must
// be partition-mergeable, so phased mode supports COUNT, SUM, MIN and
// MAX views.
//
// This file is an extension beyond the demo paper (experiment E12
// measures its effect). It is also the engine of progressive
// streaming: each phase boundary emits a ProgressSnapshot through the
// listener seam in progress.go.

// phasedAcc merges per-phase raw view results across phases. COUNT and
// SUM add, MIN/MAX take extrema, and AVG merges the sum+count pairs
// the planner materialized as aux columns (an average itself is not
// partition-mergeable, its partials are).
type phasedAcc struct {
	view   View
	target map[string]float64
	comp   map[string]float64
	// tCnt / cCnt carry the AVG denominators per group; target/comp
	// then hold the numerator sums.
	tCnt   map[string]float64
	cCnt   map[string]float64
	seenT  map[string]bool
	seenC  map[string]bool
	pruned bool
}

func newPhasedAcc(v View) *phasedAcc {
	return &phasedAcc{
		view:   v,
		target: map[string]float64{},
		comp:   map[string]float64{},
		tCnt:   map[string]float64{},
		cCnt:   map[string]float64{},
		seenT:  map[string]bool{},
		seenC:  map[string]bool{},
	}
}

// merge folds one phase's raw vectors into the accumulator.
func (a *phasedAcc) merge(d *ViewData) {
	if a.view.Func == engine.AggAvg {
		mergeAvg := func(dst, cnt map[string]float64, seen map[string]bool, keys []string, aux *AvgAux) {
			if aux == nil {
				return
			}
			for i, k := range keys {
				if aux.Counts[i] <= 0 {
					continue // group absent on this side this phase
				}
				dst[k] += aux.Sums[i]
				cnt[k] += aux.Counts[i]
				seen[k] = true
			}
		}
		mergeAvg(a.target, a.tCnt, a.seenT, d.Keys, d.TargetAux)
		mergeAvg(a.comp, a.cCnt, a.seenC, d.Keys, d.ComparisonAux)
		return
	}
	mergeSide := func(dst map[string]float64, seen map[string]bool, keys []string, raw []float64, present func(i int) bool) {
		for i, k := range keys {
			if !present(i) {
				continue
			}
			v := raw[i]
			switch a.view.Func {
			case engine.AggCount, engine.AggSum:
				dst[k] += v
			case engine.AggMin:
				if !seen[k] || v < dst[k] {
					dst[k] = v
				}
			case engine.AggMax:
				if !seen[k] || v > dst[k] {
					dst[k] = v
				}
			}
			seen[k] = true
		}
	}
	// A key is "present" on a side if its raw value is non-zero OR the
	// side genuinely produced the group; raw vectors store zero for
	// absent groups, which is indistinguishable for SUM/COUNT (additive
	// identity — merging zero is harmless) but matters for MIN/MAX of
	// negative values. ViewData only materializes keys produced by at
	// least one side, so for MIN/MAX we treat zero raws as absent
	// unless the distribution also carries mass there.
	presentT := func(i int) bool { return d.TargetRaw[i] != 0 || d.Target[i] > 0 }
	presentC := func(i int) bool { return d.ComparisonRaw[i] != 0 || d.Comparison[i] > 0 }
	mergeSide(a.target, a.seenT, d.Keys, d.TargetRaw, presentT)
	mergeSide(a.comp, a.seenC, d.Keys, d.ComparisonRaw, presentC)
}

// valueMaps returns the accumulated per-group view values for both
// sides: the merged raws directly, or numerator/denominator for AVG.
func (a *phasedAcc) valueMaps() (tMap, cMap map[string]float64) {
	if a.view.Func != engine.AggAvg {
		return a.target, a.comp
	}
	tMap = make(map[string]float64, len(a.target))
	for k, s := range a.target {
		if c := a.tCnt[k]; c > 0 {
			tMap[k] = s / c
		}
	}
	cMap = make(map[string]float64, len(a.comp))
	for k, s := range a.comp {
		if c := a.cCnt[k]; c > 0 {
			cMap[k] = s / c
		}
	}
	return tMap, cMap
}

// metricBound returns an upper bound B on the metric's value for
// distributions over at most maxGroups groups; used as a fallback
// utility scale before any interim utilities exist.
func metricBound(name string, maxGroups int) float64 {
	switch name {
	case "emd":
		if maxGroups < 2 {
			return 1
		}
		return float64(maxGroups - 1)
	case "euclidean":
		return math.Sqrt2
	case "js":
		return math.Sqrt(math.Ln2)
	case "l1":
		return 2
	case "kl":
		return math.Log(1 / distance.DefaultKLEpsilon)
	default:
		return 2
	}
}

// runPhased executes the surviving views in opts.Phases row-range
// chunks with confidence-interval pruning between phases, returning
// exact (unscored) ViewData for every view that survived to the end
// plus the actual phase count used (opts.Phases clamped to the row
// count). Interim pruning decisions score through the exploration
// operator, so the Hoeffding machinery works for any operator: the
// utility scale B is the largest interim utility the operator
// produced, with op.UtilityBound as the degenerate fallback. listener,
// when non-nil, receives a ProgressSnapshot after every non-final
// phase; the final snapshot is emitted by RecommendProgress once the
// ranking is sorted.
func (e *Engine) runPhased(ctx context.Context, views []View, ts *stats.TableStats, q Query, opts Options, op ExplorationOperator, metric distance.Metric, sample bool, st *RunStats, listener ProgressListener) ([]*ViewData, int, error) {
	for _, v := range views {
		switch v.Func {
		case engine.AggCount, engine.AggSum, engine.AggMin, engine.AggMax, engine.AggAvg:
		default:
			return nil, 0, fmt.Errorf("core: phased execution supports COUNT/SUM/AVG/MIN/MAX views; %s is not partition-mergeable without auxiliary state", v)
		}
	}
	tb, err := e.ex.Catalog().Table(q.Table)
	if err != nil {
		return nil, 0, err
	}
	rows := tb.NumRows()
	phases := opts.Phases
	if phases > rows && rows > 0 {
		phases = rows
	}

	delta := 1 - opts.PhaseConfidence
	sc := &ScoreContext{Metric: metric, Opts: opts}

	accs := make(map[string]*phasedAcc, len(views))
	order := make([]string, 0, len(views))
	for _, v := range views {
		accs[v.Key()] = newPhasedAcc(v)
		order = append(order, v.Key())
	}
	surviving := views
	prunedTotal := 0

	for phase := 0; phase < phases; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		lo := phase * rows / phases
		hi := (phase + 1) * rows / phases
		if hi <= lo {
			continue
		}
		// Observation-only: span recording never alters execution or the
		// accumulated results (a nil trace makes every call a no-op).
		span := obs.TraceFrom(ctx).StartSpan("phase").
			SetAttr("phase", strconv.Itoa(phase+1)).
			SetAttr("rows", fmt.Sprintf("%d:%d", lo, hi))
		p, err := buildPlan(surviving, ts, q, opts)
		if err != nil {
			span.Finish()
			return nil, 0, err
		}
		phaseData, err := executePlan(ctx, e, p, q, opts, op.NeedsReference(), sample, lo, hi)
		if err != nil {
			span.Finish()
			return nil, 0, err
		}
		for _, d := range phaseData {
			if acc, ok := accs[d.View.Key()]; ok && !acc.pruned {
				acc.merge(d)
			}
		}
		span.Finish()

		if phase == phases-1 {
			break // final phase: no pruning decision needed
		}
		// Interim utilities and the confidence radius after m of N
		// phases. The utility scale B is empirical (max interim
		// utility), with the metric's worst-case bound only as a
		// degenerate fallback.
		m := float64(phase + 1)
		n := float64(phases)

		var interimData []*ViewData
		for _, key := range order {
			acc := accs[key]
			if acc.pruned {
				continue
			}
			tm, cm := acc.valueMaps()
			if d := buildViewData(acc.view, tm, cm); d != nil {
				interimData = append(interimData, d)
			}
		}
		scoredData, err := op.Score(sc, interimData)
		if err != nil {
			return nil, 0, err
		}
		type scored struct {
			key  string
			view View
			u    float64
		}
		var interim []scored
		maxU := 0.0
		for _, d := range scoredData {
			interim = append(interim, scored{d.View.Key(), d.View, d.Utility})
			if d.Utility > maxU {
				maxU = d.Utility
			}
		}
		bound := maxU
		if bound <= 0 {
			bound = op.UtilityBound(metric.Name(), 2)
		}
		eps := bound * math.Sqrt((1-m/n)*math.Log(2/delta)/(2*m))
		var prunedNow []ProgressEntry
		// Pruning only applies with more survivors than the top-k; the
		// confidence radius is still reported on every snapshot.
		if len(interim) > opts.K {
			// k-th best lower bound.
			kth := kthLargest(interim, opts.K, func(s scored) float64 { return s.u })
			lower := kth - eps
			for _, s := range interim {
				if s.u+eps < lower {
					accs[s.key].pruned = true
					st.addPrune(PrunedPhased, "", 1)
					prunedNow = append(prunedNow, progressEntry(s.view, s.u, eps))
				}
			}
			surviving = surviving[:0]
			for _, key := range order {
				if !accs[key].pruned {
					surviving = append(surviving, accs[key].view)
				}
			}
		}
		prunedTotal += len(prunedNow)
		if listener != nil {
			ranking := make([]ProgressEntry, 0, len(interim)-len(prunedNow))
			for _, s := range interim {
				if !accs[s.key].pruned {
					ranking = append(ranking, progressEntry(s.view, s.u, eps))
				}
			}
			rankEntries(ranking)
			rankEntries(prunedNow)
			listener(&ProgressSnapshot{
				Phase:       phase + 1,
				Phases:      phases,
				Epsilon:     eps,
				Ranking:     ranking,
				PrunedNow:   prunedNow,
				PrunedTotal: prunedTotal,
				Survivors:   len(ranking),
			})
		}
	}

	var out []*ViewData
	for _, key := range order {
		acc := accs[key]
		if acc.pruned {
			continue
		}
		tm, cm := acc.valueMaps()
		if d := buildViewData(acc.view, tm, cm); d != nil {
			out = append(out, d)
		}
	}
	return out, phases, nil
}

// kthLargest returns the k-th largest value (1-indexed) of the scored
// slice; k is clamped to the slice length.
func kthLargest[T any](items []T, k int, val func(T) float64) float64 {
	vals := make([]float64, len(items))
	for i, it := range items {
		vals[i] = val(it)
	}
	// Simple selection: sizes here are small (≤ a few hundred views).
	for i := 0; i < k && i < len(vals); i++ {
		maxJ := i
		for j := i + 1; j < len(vals); j++ {
			if vals[j] > vals[maxJ] {
				maxJ = j
			}
		}
		vals[i], vals[maxJ] = vals[maxJ], vals[i]
	}
	if k > len(vals) {
		k = len(vals)
	}
	return vals[k-1]
}
