package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"seedb/internal/distance"
	"seedb/internal/engine"
)

// TestExtractSide exercises the result-to-map conversion directly.
func TestExtractSide(t *testing.T) {
	res := &engine.Result{
		Columns: []string{"g", "c0", "t0"},
		Rows: [][]engine.Value{
			{engine.String("a"), engine.Float(10), engine.Float(4)},
			{engine.String("b"), engine.Float(20), engine.NullValue(engine.TypeFloat)}, // no target rows
			{engine.NullValue(engine.TypeString), engine.Float(5), engine.Float(5)},    // NULL group
		},
	}
	vc := viewCols{cPrimary: "c0", tPrimary: "t0"}

	comp, _ := extractSide(res, vc, false, true)
	if len(comp) != 3 || comp["a"] != 10 || comp["b"] != 20 || comp["NULL"] != 5 {
		t.Errorf("comparison map = %v", comp)
	}
	targ, _ := extractSide(res, vc, true, true)
	if len(targ) != 2 || targ["a"] != 4 || targ["NULL"] != 5 {
		t.Errorf("target map = %v (NULL-valued groups must be absent)", targ)
	}
	// Split mode: target side reads the comparison aliases from its own
	// result.
	targSplit, _ := extractSide(res, vc, true, false)
	if targSplit["a"] != 10 {
		t.Errorf("split target map = %v, should read cPrimary", targSplit)
	}
}

// TestMarginalize exercises composite-key post-processing for every
// decomposable aggregate.
func TestMarginalize(t *testing.T) {
	// Composite result over (d0, d1): 2×2 groups.
	mkRes := func(vals [][2]float64) *engine.Result {
		res := &engine.Result{Columns: []string{"d0", "d1", "c0", "cc0"}}
		keys := [][2]string{{"x", "p"}, {"x", "q"}, {"y", "p"}, {"y", "q"}}
		for i, k := range keys {
			res.Rows = append(res.Rows, []engine.Value{
				engine.String(k[0]), engine.String(k[1]),
				engine.Float(vals[i][0]), engine.Float(vals[i][1]),
			})
		}
		return res
	}

	t.Run("sum", func(t *testing.T) {
		res := mkRes([][2]float64{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
		vc := viewCols{view: View{Func: engine.AggSum}, cPrimary: "c0"}
		m, _ := marginalize(res, 0, vc, false, true)
		if m["x"] != 3 || m["y"] != 7 {
			t.Errorf("sum marginal over d0 = %v", m)
		}
		m1, _ := marginalize(res, 1, vc, false, true)
		if m1["p"] != 4 || m1["q"] != 6 {
			t.Errorf("sum marginal over d1 = %v", m1)
		}
	})

	t.Run("min-max", func(t *testing.T) {
		res := mkRes([][2]float64{{5, 0}, {-2, 0}, {7, 0}, {1, 0}})
		vcMin := viewCols{view: View{Func: engine.AggMin}, cPrimary: "c0"}
		m, _ := marginalize(res, 0, vcMin, false, true)
		if m["x"] != -2 || m["y"] != 1 {
			t.Errorf("min marginal = %v", m)
		}
		vcMax := viewCols{view: View{Func: engine.AggMax}, cPrimary: "c0"}
		mm, _ := marginalize(res, 0, vcMax, false, true)
		if mm["x"] != 5 || mm["y"] != 7 {
			t.Errorf("max marginal = %v", mm)
		}
	})

	t.Run("avg-uses-aux-counts", func(t *testing.T) {
		// AVG partials: (sum, count) per composite group.
		res := mkRes([][2]float64{{10, 2}, {20, 3}, {30, 5}, {0, 0}})
		vc := viewCols{view: View{Func: engine.AggAvg}, cPrimary: "c0", cAux: "cc0"}
		m, _ := marginalize(res, 0, vc, false, true)
		if math.Abs(m["x"]-30.0/5) > 1e-12 {
			t.Errorf("avg[x] = %v, want 6", m["x"])
		}
		if math.Abs(m["y"]-30.0/5) > 1e-12 {
			t.Errorf("avg[y] = %v, want 6 (zero-count cell ignored)", m["y"])
		}
	})

	t.Run("null-cells-skipped", func(t *testing.T) {
		res := &engine.Result{
			Columns: []string{"d0", "d1", "c0"},
			Rows: [][]engine.Value{
				{engine.String("x"), engine.String("p"), engine.Float(3)},
				{engine.String("x"), engine.String("q"), engine.NullValue(engine.TypeFloat)},
			},
		}
		vc := viewCols{view: View{Func: engine.AggSum}, cPrimary: "c0"}
		m, _ := marginalize(res, 0, vc, false, true)
		if m["x"] != 3 {
			t.Errorf("null cells must not contribute: %v", m)
		}
	})
}

func TestBuildViewData(t *testing.T) {
	metric, _ := distance.Get("emd")
	// Empty both sides → nil.
	if buildViewData(View{}, nil, nil) != nil {
		t.Error("empty view data should be nil")
	}
	// Target-only group aligns with zero comparison mass.
	d := buildViewData(View{Dimension: "d"},
		map[string]float64{"a": 1},
		map[string]float64{"a": 1, "b": 1})
	if d == nil {
		t.Fatal("view data should build")
	}
	if len(d.Keys) != 2 || d.TargetRaw[1] != 0 {
		t.Errorf("alignment wrong: keys=%v targetRaw=%v", d.Keys, d.TargetRaw)
	}
	// Scoring is the operator's job: the deviation operator assigns
	// the metric distance as the utility.
	scored, err := (deviationOperator{}).Score(&ScoreContext{Metric: metric}, []*ViewData{d})
	if err != nil || len(scored) != 1 {
		t.Fatalf("deviation score: %v (%d views)", err, len(scored))
	}
	if d.Utility <= 0 {
		t.Errorf("utility = %v, want > 0 for differing distributions", d.Utility)
	}
}

// TestConcurrentRecommends runs several Recommend calls on one engine
// at once — the frontend does this whenever two browser tabs race.
func TestConcurrentRecommends(t *testing.T) {
	e, q, _ := syntheticEngine(t, 5000, 11)
	opts := DefaultOptions()
	opts.K = 3
	var wg sync.WaitGroup
	errs := make([]error, 8)
	tops := make([]View, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Recommend(context.Background(), q, opts)
			if err != nil {
				errs[i] = err
				return
			}
			tops[i] = res.Recommendations[0].Data.View
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < len(tops); i++ {
		if tops[i] != tops[0] {
			t.Errorf("concurrent runs disagree: %v vs %v", tops[i], tops[0])
		}
	}
}
