package core

import (
	"reflect"
	"testing"

	"seedb/internal/engine"
)

// TestRunSignatureOptionsAreValueOnly guards the property RunSignature
// depends on: Options must contain only deterministic value kinds
// (scalars, strings, and slices/arrays/structs of those). A pointer,
// func, map, channel, or interface field would make the %+v rendering
// carry per-request addresses (or nondeterministic ordering), silently
// disabling request coalescing while every value-only test keeps
// passing. If this test fails for a new field, extend RunSignature
// with an explicit, deterministic serialization of that field instead.
func TestRunSignatureOptionsAreValueOnly(t *testing.T) {
	var check func(path string, ty reflect.Type)
	check = func(path string, ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Bool,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.String:
			// deterministic value kinds
		case reflect.Slice, reflect.Array:
			check(path+"[]", ty.Elem())
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		default:
			t.Errorf("Options field %s has kind %v — %%+v would render it "+
				"nondeterministically (addresses / map order) and break RunSignature coalescing", path, ty.Kind())
		}
	}
	check("Options", reflect.TypeOf(Options{}))
}

// TestRunSignatureDeterminismAndSensitivity: equal requests share a
// signature (including default-spelling differences erased by
// normalization); any result-affecting difference separates them.
func TestRunSignatureDeterminismAndSensitivity(t *testing.T) {
	q := Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}
	opts := DefaultOptions()

	if got, want := RunSignature("fp1", q, opts), RunSignature("fp1", q, opts); got != want {
		t.Fatal("identical requests must share a signature")
	}
	// Normalization erases default spellings: Metric "" means "emd".
	blank := opts
	blank.Metric = ""
	if RunSignature("fp1", q, blank) != RunSignature("fp1", q, opts) {
		t.Error("normalized-equal options must coalesce")
	}

	distinct := map[string]string{
		"base": RunSignature("fp1", q, opts),
	}
	other := opts
	other.K = opts.K + 1
	distinct["K"] = RunSignature("fp1", q, other)
	distinct["fingerprint"] = RunSignature("fp2", q, opts)
	q2 := Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Technology"))}
	distinct["predicate"] = RunSignature("fp1", q2, opts)
	phased := opts
	phased.Phases = 4
	distinct["phases"] = RunSignature("fp1", q, phased)

	seen := map[string]string{}
	for name, sig := range distinct {
		if prev, dup := seen[sig]; dup {
			t.Errorf("signatures for %q and %q collide", name, prev)
		}
		seen[sig] = name
	}
}
