package core

import "sort"

// Progressive execution: the ProgressListener seam.
//
// Phased execution (see phased.go) already processes the table in N
// row-range phases and re-estimates every surviving view's utility
// between them — but until this seam existed, that interim state was
// invisible: callers paid the full latency and then saw only the final
// ranking. A ProgressListener receives an immutable snapshot of the
// interim ranking after every phase, which is what lets the service
// layer stream a converging ranking to analysts while later phases are
// still running (the interactive-latency payoff of phased execution).
//
// Observation only: a listener can never change what Recommend
// returns. Snapshots are built from fresh slices, so retaining one is
// safe; the listener is called synchronously between phases, so a slow
// listener slows the pipeline — the service layer's Stream decouples
// slow consumers with a conflating mailbox instead of blocking here.

// ProgressListener receives execution-progress snapshots during a
// RecommendProgress call. It is called from the goroutine running the
// recommendation, once after every completed phase of phased execution
// and once with the final ranking (Final=true) just before Recommend
// returns. Implementations must not mutate the snapshot.
type ProgressListener func(*ProgressSnapshot)

// ProgressSnapshot is one immutable observation of a running
// recommendation: the surviving views ranked by their current utility
// estimates, the confidence radius those estimates carry, and any
// views pruned at this phase boundary.
type ProgressSnapshot struct {
	// Phase is the 1-based index of the phase that just completed;
	// Phases is the total the run was planned with. A single-pass run
	// (Options.Phases <= 1) emits exactly one snapshot with
	// Phase = Phases = 1 and Final = true.
	Phase  int
	Phases int
	// Final marks the last snapshot of the run: its Ranking is the
	// exact ranking the returned Result packages, and Epsilon is 0.
	Final bool
	// Epsilon is the Hoeffding-style confidence radius attached to the
	// interim utility estimates (see phased.go); every surviving view's
	// true utility lies within [Utility-Epsilon, Utility+Epsilon] with
	// the configured per-decision confidence.
	Epsilon float64
	// Ranking lists every surviving view, best first (utility
	// descending, view key ascending on ties — the same order the final
	// Result uses).
	Ranking []ProgressEntry
	// PrunedNow lists the views discarded at this phase boundary by
	// confidence-interval pruning, with the interim utilities they were
	// discarded at. Empty on snapshots where nothing was pruned.
	PrunedNow []ProgressEntry
	// PrunedTotal counts views pruned by phased execution so far.
	PrunedTotal int
	// Survivors counts views still in the running (== len(Ranking)).
	Survivors int
}

// ProgressEntry is one view's position in an interim ranking.
type ProgressEntry struct {
	View View
	// Utility is the current estimate (exact once Final).
	Utility float64
	// Lower / Upper bound the true utility with the run's confidence:
	// Utility ∓ Epsilon. Equal to Utility on the final snapshot.
	Lower, Upper float64
}

// rankEntries sorts entries into ranking order: utility descending,
// view key ascending on ties — mirroring Recommend's final sort so
// interim and final rankings are directly comparable.
func rankEntries(entries []ProgressEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Utility != entries[j].Utility {
			return entries[i].Utility > entries[j].Utility
		}
		return entries[i].View.Key() < entries[j].View.Key()
	})
}

// progressEntry builds one entry with bounds derived from eps.
func progressEntry(v View, utility, eps float64) ProgressEntry {
	return ProgressEntry{View: v, Utility: utility, Lower: utility - eps, Upper: utility + eps}
}

// finalSnapshot builds the terminal snapshot from the ranked view data
// (already sorted by Recommend).
func finalSnapshot(phase, phases, prunedTotal int, data []*ViewData) *ProgressSnapshot {
	ranking := make([]ProgressEntry, len(data))
	for i, d := range data {
		ranking[i] = progressEntry(d.View, d.Utility, 0)
	}
	return &ProgressSnapshot{
		Phase:       phase,
		Phases:      phases,
		Final:       true,
		Ranking:     ranking,
		PrunedTotal: prunedTotal,
		Survivors:   len(ranking),
	}
}
