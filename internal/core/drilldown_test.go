package core

import (
	"context"
	"strings"
	"testing"

	"seedb/internal/datagen"
	"seedb/internal/engine"
)

func drillTable(t *testing.T) *engine.Table {
	t.Helper()
	tb := engine.MustNewTable("d", engine.Schema{
		{Name: "s", Type: engine.TypeString},
		{Name: "i", Type: engine.TypeInt},
		{Name: "f", Type: engine.TypeFloat},
		{Name: "ts", Type: engine.TypeTime},
		{Name: "m", Type: engine.TypeFloat},
	})
	for k := 0; k < 100; k++ {
		var s engine.Value
		if k%10 == 0 {
			s = engine.NullValue(engine.TypeString)
		} else {
			s = engine.String(string(rune('a' + k%3)))
		}
		_ = tb.AppendRow(s, engine.Int(int64(k%7)), engine.Float(float64(k)),
			engine.Value{Kind: engine.TypeTime, I: int64(k) * 1e9}, engine.Float(float64(k)))
	}
	return tb
}

func countWhere(t *testing.T, tb *engine.Table, p engine.Predicate) int {
	t.Helper()
	b, err := p.Bind(tb)
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	n := 0
	for i := 0; i < tb.NumRows(); i++ {
		if b(i) {
			n++
		}
	}
	return n
}

func TestGroupPredicateDiscrete(t *testing.T) {
	tb := drillTable(t)
	v := View{Dimension: "s", Measure: "m", Func: engine.AggSum}
	p, err := GroupPredicate(v, tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	// k%3==0 and k%10!=0 → values 'a' at k=3,6,9*,12,... count directly:
	want := 0
	for k := 0; k < 100; k++ {
		if k%10 != 0 && k%3 == 0 {
			want++
		}
	}
	if got := countWhere(t, tb, p); got != want {
		t.Errorf("matched %d rows, want %d", got, want)
	}
	// NULL group.
	pn, err := GroupPredicate(v, tb, "NULL")
	if err != nil {
		t.Fatal(err)
	}
	if got := countWhere(t, tb, pn); got != 10 {
		t.Errorf("NULL group matched %d, want 10", got)
	}
	// Int dimension equality.
	vi := View{Dimension: "i", Measure: "m", Func: engine.AggSum}
	pi, err := GroupPredicate(vi, tb, "3")
	if err != nil {
		t.Fatal(err)
	}
	want = 0
	for k := 0; k < 100; k++ {
		if k%7 == 3 {
			want++
		}
	}
	if got := countWhere(t, tb, pi); got != want {
		t.Errorf("i=3 matched %d, want %d", got, want)
	}
}

func TestGroupPredicateBinned(t *testing.T) {
	tb := drillTable(t)
	// Float bins of width 25: label "25.0" covers [25,50).
	vf := View{Dimension: "f", Measure: "m", Func: engine.AggSum, BinWidth: 25}
	p, err := GroupPredicate(vf, tb, "25.0")
	if err != nil {
		t.Fatal(err)
	}
	if got := countWhere(t, tb, p); got != 25 {
		t.Errorf("float bin matched %d, want 25", got)
	}
	// Int bins of width 2 on i (values 0..6): label "2" covers {2,3}.
	vi := View{Dimension: "i", Measure: "m", Func: engine.AggSum, BinWidth: 2}
	pi, err := GroupPredicate(vi, tb, "2")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := 0; k < 100; k++ {
		if k%7 == 2 || k%7 == 3 {
			want++
		}
	}
	if got := countWhere(t, tb, pi); got != want {
		t.Errorf("int bin matched %d, want %d", got, want)
	}
	// Time bins of width 10s: label is the RFC3339 bucket start.
	vt := View{Dimension: "ts", Measure: "m", Func: engine.AggSum, BinWidth: 10e9}
	pt, err := GroupPredicate(vt, tb, "1970-01-01T00:00:10Z")
	if err != nil {
		t.Fatal(err)
	}
	if got := countWhere(t, tb, pt); got != 10 {
		t.Errorf("time bin matched %d, want 10", got)
	}
}

func TestGroupPredicateErrors(t *testing.T) {
	tb := drillTable(t)
	v := View{Dimension: "zz", Measure: "m", Func: engine.AggSum}
	if _, err := GroupPredicate(v, tb, "x"); err == nil {
		t.Error("missing column must error")
	}
	vi := View{Dimension: "i", Measure: "m", Func: engine.AggSum}
	if _, err := GroupPredicate(vi, tb, "not-an-int"); err == nil {
		t.Error("bad int label must error")
	}
	vf := View{Dimension: "f", Measure: "m", Func: engine.AggSum, BinWidth: 10}
	if _, err := GroupPredicate(vf, tb, "junk"); err == nil {
		t.Error("bad float label must error")
	}
	vt := View{Dimension: "ts", Measure: "m", Func: engine.AggSum}
	if _, err := GroupPredicate(vt, tb, "not-a-time"); err == nil {
		t.Error("bad time label must error")
	}
}

func TestRollUp(t *testing.T) {
	base := engine.Eq("category", engine.String("Furniture"))
	group := engine.Eq("region", engine.String("Central"))
	drilled := Query{Table: "t", Predicate: engine.And(base, group)}

	up, ok := RollUp(drilled)
	if !ok {
		t.Fatal("conjunction should roll up")
	}
	if up.Predicate.String() != base.String() {
		t.Errorf("rolled predicate = %q, want %q", up.Predicate.String(), base.String())
	}
	// A single-predicate query cannot roll up further.
	if _, ok := RollUp(up); ok {
		t.Error("non-conjunction should not roll up")
	}
	// Empty query cannot roll up.
	if _, ok := RollUp(Query{Table: "t"}); ok {
		t.Error("no predicate should not roll up")
	}
	// Triple conjunction rolls to a double.
	third := engine.Eq("segment", engine.String("Consumer"))
	deep := Query{Table: "t", Predicate: engine.And(base, group, third)}
	up2, ok := RollUp(deep)
	if !ok {
		t.Fatal("triple conjunction should roll up")
	}
	and, isAnd := up2.Predicate.(*engine.AndPred)
	if !isAnd || len(and.Children) != 2 {
		t.Errorf("rolled predicate = %v", up2.Predicate)
	}
	// Rolling a two-level drill chain all the way recovers the table.
	up3, _ := RollUp(up2)
	up4, ok := RollUp(Query{Table: "t", Predicate: engine.And(up3.Predicate)})
	_ = up4
	_ = ok
}

func TestDrillDownEndToEnd(t *testing.T) {
	// Superstore: ask about Furniture, then drill into the Central
	// region (the planted loss region) and recommend within it.
	cat := engine.NewCatalog()
	if err := cat.Register(datagen.Superstore("orders", 20000, 42)); err != nil {
		t.Fatal(err)
	}
	e := New(engine.NewExecutor(cat))
	ctx := context.Background()
	q := Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}

	opts := DefaultOptions()
	opts.K = 5
	res, err := e.Recommend(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	var regionView *ViewData
	for _, rec := range res.Recommendations {
		if rec.Data.View.Dimension == "region" {
			regionView = rec.Data
			break
		}
	}
	if regionView == nil {
		// region views exist in AllScores even if not top-k.
		for _, s := range res.AllScores {
			if s.View.Dimension == "region" {
				regionView = &ViewData{View: s.View}
				break
			}
		}
	}
	if regionView == nil {
		t.Fatal("no region view scored")
	}

	drill, err := e.DrillDown(ctx, q, regionView.View, "Central", opts)
	if err != nil {
		t.Fatal(err)
	}
	if drill.TargetRowCount >= res.TargetRowCount {
		t.Errorf("drill-down subset (%d) must be smaller than the original (%d)",
			drill.TargetRowCount, res.TargetRowCount)
	}
	if !strings.Contains(drill.Query.String(), "region = 'Central'") {
		t.Errorf("drill query = %q", drill.Query.String())
	}
	// The drilled dimension must no longer appear as a view dimension.
	for _, s := range drill.AllScores {
		if s.View.Dimension == "region" {
			t.Error("drilled dimension must be excluded from the refined view space")
		}
	}
	// Drill-down from an unfiltered query.
	drill2, err := e.DrillDown(ctx, Query{Table: "orders"}, regionView.View, "West", opts)
	if err != nil {
		t.Fatal(err)
	}
	if drill2.Query.Predicate == nil {
		t.Error("drill from full table should carry the group predicate")
	}
	// Errors propagate.
	if _, err := e.DrillDown(ctx, Query{Table: "none"}, regionView.View, "x", opts); err == nil {
		t.Error("missing table must error")
	}
	if _, err := e.DrillDown(ctx, q, View{Dimension: "zz"}, "x", opts); err == nil {
		t.Error("bad view must error")
	}
}
