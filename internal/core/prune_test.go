package core

import (
	"fmt"
	"math/rand"
	"testing"

	"seedb/internal/engine"
	"seedb/internal/stats"
)

// pruneFixture builds a table with a constant dim, a skewed dim, two
// perfectly correlated dims, and a normal dim.
func pruneFixture(t *testing.T) (*engine.Table, *stats.TableStats, *engine.Catalog) {
	t.Helper()
	tb := engine.MustNewTable("p", engine.Schema{
		{Name: "normal", Type: engine.TypeString},
		{Name: "constant", Type: engine.TypeString},
		{Name: "skewed", Type: engine.TypeString},
		{Name: "city", Type: engine.TypeString},
		{Name: "city_code", Type: engine.TypeString},
		{Name: "m", Type: engine.TypeFloat},
	})
	rng := rand.New(rand.NewSource(1))
	cities := []string{"BOS", "SEA", "NYC"}
	for i := 0; i < 2000; i++ {
		skew := "hot"
		if rng.Intn(1000) == 0 {
			skew = fmt.Sprintf("cold%d", rng.Intn(3))
		}
		c := rng.Intn(3)
		_ = tb.AppendRow(
			engine.String(fmt.Sprintf("n%d", rng.Intn(6))),
			engine.String("only"),
			engine.String(skew),
			engine.String(cities[c]),
			engine.String(fmt.Sprintf("code-%d", c)),
			engine.Float(rng.Float64()),
		)
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	return tb, stats.Collect(tb), cat
}

func viewsForDims(dims ...string) []View {
	var out []View
	for _, d := range dims {
		out = append(out, View{Dimension: d, Measure: "m", Func: engine.AggSum})
		out = append(out, View{Dimension: d, Measure: "m", Func: engine.AggCount})
	}
	return out
}

func dimSet(views []View) map[string]bool {
	out := map[string]bool{}
	for _, v := range views {
		out[v.Dimension] = true
	}
	return out
}

func TestPruneLowVariance(t *testing.T) {
	_, ts, _ := pruneFixture(t)
	opts, _ := DefaultOptions().normalize()
	opts.VarianceMinEntropy = 0.02
	st := &RunStats{}
	views := viewsForDims("normal", "constant", "skewed")
	kept := pruneLowVariance(views, ts, opts, st)
	dims := dimSet(kept)
	if dims["constant"] {
		t.Error("constant dimension must be pruned")
	}
	if !dims["normal"] {
		t.Error("normal dimension must survive")
	}
	if dims["skewed"] {
		t.Error("ultra-skewed dimension (entropy ~0) should be pruned at this threshold")
	}
	if st.PrunedViews[PrunedLowVariance] != 4 {
		t.Errorf("pruned view count = %d, want 4 (2 dims × 2 views)", st.PrunedViews[PrunedLowVariance])
	}
	if st.PrunedDims["constant"] != PrunedLowVariance {
		t.Errorf("PrunedDims = %v", st.PrunedDims)
	}
	// Threshold 0 keeps the skewed dim but still drops the constant.
	opts.VarianceMinEntropy = 0
	st2 := &RunStats{}
	kept2 := pruneLowVariance(viewsForDims("constant", "skewed"), ts, opts, st2)
	dims2 := dimSet(kept2)
	if dims2["constant"] || !dims2["skewed"] {
		t.Errorf("threshold-0 pruning wrong: %v", dims2)
	}
}

func TestPruneCorrelated(t *testing.T) {
	tb, _, cat := pruneFixture(t)
	opts, _ := DefaultOptions().normalize()
	st := &RunStats{}
	represents := map[string][]string{}
	views := viewsForDims("normal", "city", "city_code")
	kept, err := pruneCorrelated(views, tb, stats.NewCollector(), cat, opts, st, represents)
	if err != nil {
		t.Fatal(err)
	}
	dims := dimSet(kept)
	if !dims["normal"] {
		t.Error("uncorrelated dim must survive")
	}
	if dims["city"] && dims["city_code"] {
		t.Error("correlated pair must be collapsed to one representative")
	}
	if !dims["city"] && !dims["city_code"] {
		t.Error("one of the correlated pair must survive")
	}
	var rep, other string
	if dims["city"] {
		rep, other = "city", "city_code"
	} else {
		rep, other = "city_code", "city"
	}
	if len(represents[rep]) != 1 || represents[rep][0] != other {
		t.Errorf("represents[%s] = %v, want [%s]", rep, represents[rep], other)
	}
	if st.PrunedViews[PrunedCorrelated] != 2 {
		t.Errorf("pruned views = %d, want 2", st.PrunedViews[PrunedCorrelated])
	}
}

func TestPruneCorrelatedRepresentativeByAccess(t *testing.T) {
	tb, _, cat := pruneFixture(t)
	// Make city_code the hot column; it should become the
	// representative despite alphabetical order favoring city.
	for i := 0; i < 50; i++ {
		cat.RecordAccess("p", "city_code")
	}
	opts, _ := DefaultOptions().normalize()
	st := &RunStats{}
	represents := map[string][]string{}
	kept, err := pruneCorrelated(viewsForDims("city", "city_code"), tb, stats.NewCollector(), cat, opts, st, represents)
	if err != nil {
		t.Fatal(err)
	}
	dims := dimSet(kept)
	if !dims["city_code"] || dims["city"] {
		t.Errorf("most-accessed member should represent the cluster: %v", dims)
	}
}

func TestPruneCorrelatedSingleDim(t *testing.T) {
	tb, _, cat := pruneFixture(t)
	opts, _ := DefaultOptions().normalize()
	st := &RunStats{}
	views := viewsForDims("normal")
	kept, err := pruneCorrelated(views, tb, stats.NewCollector(), cat, opts, st, map[string][]string{})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(views) {
		t.Error("single dimension: nothing to prune")
	}
}

func TestPruneRarelyAccessed(t *testing.T) {
	_, _, cat := pruneFixture(t)
	opts, _ := DefaultOptions().normalize()
	opts.AccessKeepFraction = 0.5
	opts.AccessMinHistory = 100
	st := &RunStats{}
	views := viewsForDims("normal", "city", "city_code")

	// Below history threshold: no-op.
	cat.RecordAccess("p", "normal")
	kept := pruneRarelyAccessed(views, "p", cat, opts, st)
	if len(kept) != len(views) {
		t.Error("pruning must not activate before AccessMinHistory")
	}

	// Build history: normal hot (100), city warm (60), city_code cold (2).
	for i := 0; i < 99; i++ {
		cat.RecordAccess("p", "normal")
	}
	for i := 0; i < 60; i++ {
		cat.RecordAccess("p", "city")
	}
	cat.RecordAccess("p", "city_code")
	cat.RecordAccess("p", "city_code")

	st2 := &RunStats{}
	kept2 := pruneRarelyAccessed(views, "p", cat, opts, st2)
	dims := dimSet(kept2)
	if !dims["normal"] || !dims["city"] {
		t.Errorf("hot dims must survive: %v", dims)
	}
	if dims["city_code"] {
		t.Error("cold dim must be pruned")
	}
	if st2.PrunedViews[PrunedRarelyUsed] != 2 {
		t.Errorf("pruned views = %d", st2.PrunedViews[PrunedRarelyUsed])
	}
}

func TestPruneViewsPipeline(t *testing.T) {
	tb, ts, cat := pruneFixture(t)
	opts, _ := DefaultOptions().normalize()
	views := viewsForDims("normal", "constant", "city", "city_code")
	st := &RunStats{}
	outcome, err := pruneViews(views, tb, ts, stats.NewCollector(), cat, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	dims := dimSet(outcome.views)
	if dims["constant"] {
		t.Error("pipeline must apply variance pruning")
	}
	if dims["city"] && dims["city_code"] {
		t.Error("pipeline must apply correlation pruning")
	}
	// All pruning off: everything survives.
	off := opts
	off.PruneLowVariance = false
	off.PruneCorrelated = false
	off.PruneRarelyAccessed = false
	st2 := &RunStats{}
	outcome2, err := pruneViews(views, tb, ts, stats.NewCollector(), cat, off, st2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome2.views) != len(views) {
		t.Errorf("no pruning: %d views survived of %d", len(outcome2.views), len(views))
	}
}
