package core

import (
	"fmt"
	"runtime"

	"seedb/internal/engine"
)

// CombineMode selects how the optimizer merges view queries with
// different group-by attributes (paper §3.3, "Combine Multiple
// Group-bys").
type CombineMode int

const (
	// CombineNone executes one query per dimension attribute.
	CombineNone CombineMode = iota
	// CombineGroupingSets shares one scan among several dimensions by
	// maintaining one hash table per dimension (engine grouping sets).
	// Memory grows with the SUM of dimension cardinalities.
	CombineGroupingSets
	// CombineCompositeKey groups several dimensions under a single
	// composite key and post-aggregates marginal distributions at the
	// backend. Memory grows with the PRODUCT of cardinalities, so the
	// optimizer bin-packs dimensions under the group budget.
	CombineCompositeKey
)

// String names the mode.
func (m CombineMode) String() string {
	switch m {
	case CombineNone:
		return "none"
	case CombineGroupingSets:
		return "grouping-sets"
	case CombineCompositeKey:
		return "composite-key"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(m))
	}
}

// Options configures a Recommend call. The zero value is not valid;
// use DefaultOptions as the base.
type Options struct {
	// K is how many top views to recommend.
	K int
	// Metric names the distance function (see internal/distance).
	Metric string

	// Operator names the exploration operator that scores views
	// ("deviation" when empty; see ExplorationOperator and
	// OperatorNames). The operator travels inside Options on purpose:
	// RunSignature, the scheduler's coalescing key, session defaults,
	// and the SSE resume digest all derive from the option set, so a
	// new operator knob propagates through every layer without any of
	// them learning what an operator is.
	Operator string

	// ProbeDimension / ProbeMeasure / ProbeFunc / ProbeBinWidth name
	// the probe view for the similarity operator ("views shaped like
	// f(m) BY a"). ProbeFunc is the aggregate name ("sum", "count",
	// ...); it is kept as a string so Options stays a value-only
	// struct (see RunSignature).
	ProbeDimension string
	ProbeMeasure   string
	ProbeFunc      string
	ProbeBinWidth  float64

	// AggFuncs lists the aggregate functions F to enumerate.
	AggFuncs []engine.AggFunc
	// Dimensions / Measures override automatic attribute detection
	// when non-empty.
	Dimensions []string
	Measures   []string
	// MaxGroupsPerDim caps a dimension's distinct-value count; higher
	// cardinality attributes are not useful to visualize and are
	// skipped during enumeration.
	MaxGroupsPerDim int
	// BinContinuousDims turns continuous columns (floats, over-wide
	// ints, timestamps) into equi-width binned dimensions — the
	// "binning" operation of §1 — instead of skipping them.
	BinContinuousDims bool
	// TargetBins is the bucket count binning aims for (snapped to
	// nice 1/2/5 widths).
	TargetBins int

	// --- View-space pruning (paper §3.3, "View Space Pruning") ---

	// PruneLowVariance drops dimensions whose value distribution is
	// too concentrated (normalized entropy below VarianceMinEntropy,
	// or a single distinct value).
	PruneLowVariance   bool
	VarianceMinEntropy float64

	// PruneCorrelated clusters dimensions with Cramér's V ≥
	// CorrelationThreshold and evaluates one representative per
	// cluster.
	PruneCorrelated      bool
	CorrelationThreshold float64

	// PruneRarelyAccessed drops dimensions whose historical access
	// count (from the catalog's tracker) falls below
	// AccessKeepFraction of the most-accessed dimension's count; it
	// only activates once the table has at least AccessMinHistory
	// recorded column touches.
	PruneRarelyAccessed bool
	AccessKeepFraction  float64
	AccessMinHistory    int64

	// --- Query optimizations (paper §3.3, "View Query Optimizations") ---

	// CombineTargetComparison merges each view's target and comparison
	// queries into one scan using conditional aggregation.
	CombineTargetComparison bool
	// CombineAggregates merges all views sharing a group-by attribute
	// into one query.
	CombineAggregates bool
	// CombineGroupBys selects the multi-group-by strategy.
	CombineGroupBys CombineMode
	// GroupBudget is the working-memory budget expressed in groups
	// (hash-table entries) per combined query.
	GroupBudget int
	// ExactPacking uses branch-and-bound (the paper's ILP) instead of
	// first-fit-decreasing when bin-packing dimensions.
	ExactPacking bool

	// SampleFraction ∈ (0,1) runs view queries on a Bernoulli sample
	// when the table has at least SampleMinRows rows.
	SampleFraction float64
	SampleMinRows  int
	SampleSeed     uint64

	// Parallelism is the number of concurrent view queries (and the
	// per-query scan parallelism for large tables). 0 means GOMAXPROCS.
	Parallelism int

	// Shards requests scatter-gather execution of every view query
	// across this many horizontal table partitions when the engine has
	// a cluster backend installed (see core.Backend and
	// internal/cluster). 0 keeps the backend's configured layout; the
	// plain in-process backend ignores it. Results are byte-identical
	// across shard counts — sharding changes where the scan runs, never
	// what comes back.
	Shards int

	// Phases > 1 enables phased execution with confidence-interval
	// pruning (extension): the table is processed in Phases chunks and
	// views whose utility upper bound cannot reach the top-k are
	// dropped early. PhaseConfidence is the per-decision confidence
	// (e.g. 0.95).
	Phases          int
	PhaseConfidence float64

	// IncludeWorst returns the N lowest-utility views too (the demo's
	// "bad views" display).
	IncludeWorst int
}

// DefaultOptions returns the configuration used by the demo: all
// optimizations on, EMD metric, top 10 views.
func DefaultOptions() Options {
	return Options{
		K:                       10,
		Metric:                  "emd",
		AggFuncs:                []engine.AggFunc{engine.AggSum, engine.AggCount, engine.AggAvg},
		MaxGroupsPerDim:         500,
		BinContinuousDims:       true,
		TargetBins:              12,
		PruneLowVariance:        true,
		VarianceMinEntropy:      0.02,
		PruneCorrelated:         true,
		CorrelationThreshold:    0.95,
		PruneRarelyAccessed:     false, // opt-in: needs access history
		AccessKeepFraction:      0.1,
		AccessMinHistory:        100,
		CombineTargetComparison: true,
		CombineAggregates:       true,
		CombineGroupBys:         CombineGroupingSets,
		GroupBudget:             100_000,
		ExactPacking:            true,
		SampleFraction:          0, // sampling is opt-in
		SampleMinRows:           100_000,
		Parallelism:             0,
		IncludeWorst:            0,
	}
}

// BasicOptions returns the paper's "basic framework": every view query
// executed independently with no pruning, no sharing, no sampling —
// the baseline the optimizations are measured against.
func BasicOptions() Options {
	o := DefaultOptions()
	o.PruneLowVariance = false
	o.PruneCorrelated = false
	o.PruneRarelyAccessed = false
	o.CombineTargetComparison = false
	o.CombineAggregates = false
	o.CombineGroupBys = CombineNone
	o.SampleFraction = 0
	o.Parallelism = 1
	o.Phases = 0
	return o
}

// normalize validates and fills defaults; returns a copy.
func (o Options) normalize() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("core: K must be positive, got %d", o.K)
	}
	if o.Metric == "" {
		o.Metric = "emd"
	}
	if o.Operator == "" {
		o.Operator = "deviation"
	}
	op, err := GetOperator(o.Operator)
	if err != nil {
		return o, err
	}
	if err := op.Validate(o); err != nil {
		return o, err
	}
	if !op.NeedsReference() {
		// Target-only operators run a single side per view; the
		// conditional-aggregate rewrite that merges target+comparison
		// scans has nothing to merge.
		o.CombineTargetComparison = false
	}
	if len(o.AggFuncs) == 0 {
		o.AggFuncs = []engine.AggFunc{engine.AggSum}
	}
	if o.MaxGroupsPerDim <= 0 {
		o.MaxGroupsPerDim = 500
	}
	if o.TargetBins <= 0 {
		o.TargetBins = 12
	}
	if o.GroupBudget <= 0 {
		o.GroupBudget = 100_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("core: Shards must be >= 0, got %d", o.Shards)
	}
	if o.SampleFraction < 0 || o.SampleFraction >= 1 {
		if o.SampleFraction != 0 {
			return o, fmt.Errorf("core: SampleFraction must be in [0,1), got %v", o.SampleFraction)
		}
	}
	if o.Phases < 0 {
		return o, fmt.Errorf("core: Phases must be >= 0, got %d", o.Phases)
	}
	if o.Phases > 1 {
		if o.PhaseConfidence <= 0 || o.PhaseConfidence >= 1 {
			o.PhaseConfidence = 0.95
		}
	}
	if o.CorrelationThreshold <= 0 {
		o.CorrelationThreshold = 0.95
	}
	if o.VarianceMinEntropy < 0 {
		o.VarianceMinEntropy = 0
	}
	if o.AccessKeepFraction <= 0 {
		o.AccessKeepFraction = 0.1
	}
	return o, nil
}
