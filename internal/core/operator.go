package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"seedb/internal/distance"
	"seedb/internal/engine"
	"seedb/internal/viz"
)

// ExplorationOperator is the seam that turns the deviation-only
// pipeline into a family of exploration primitives (zenvisage-style,
// see PAPERS.md). The engine owns everything an operator does not care
// about — enumeration, pruning, the query-combining optimizer, caching,
// sharding, phased execution — and the operator owns exactly three
// things: what per-view data it needs (a target-only scan, or target
// plus the whole-table reference), how a batch of evaluated views is
// scored, and how wide its utility scale is (so Hoeffding-based phased
// pruning and top-k selection keep working without knowing which
// operator is running).
//
// Score receives the full batch of evaluated views because some
// operators are relational: outlier/typicality scores each view against
// the centroid of its siblings, similarity scores against a probe view
// that travels in the same batch. Operators must be deterministic pure
// functions of their inputs — scores feed golden tests that pin
// byte-identical output across shard counts, placement, caching, and
// streaming.
type ExplorationOperator interface {
	// Name is the registry key (e.g. "deviation").
	Name() string
	// NeedsReference reports whether the operator compares the target
	// (D_Q) distribution against the whole-table reference (D). When
	// false the engine runs only the target-side query per view and
	// mirrors it into the comparison slot, halving the scan work.
	NeedsReference() bool
	// Validate checks operator-specific options at normalize time.
	Validate(o Options) error
	// RequiredViews lists views that must be evaluated even if
	// enumeration or pruning would skip them (e.g. similarity's probe
	// view). The engine appends any that are missing.
	RequiredViews(o Options) []View
	// Score assigns Utility to the evaluated views and returns the
	// rankable subset, preserving input order. Views an operator cannot
	// score (no ordinal domain for trend, the probe itself for
	// similarity, singleton sibling groups for outlier) are dropped.
	Score(sc *ScoreContext, data []*ViewData) ([]*ViewData, error)
	// UtilityBound returns an upper bound B on the operator's utility
	// for views of at most maxGroups groups, used as the fallback
	// Hoeffding scale before any interim utility exists.
	UtilityBound(metricName string, maxGroups int) float64
	// Intent classifies the ranking for chart-type recommendation.
	Intent() viz.Intent
}

// ScoreContext carries the run-scoped inputs an operator scores with.
type ScoreContext struct {
	// Metric is the configured distance kernel (Options.Metric).
	Metric distance.Metric
	// Opts is the normalized option set (probe spec, K, ...).
	Opts Options
}

// ---------------------------------------------------------------------
// Registry

var (
	opMu       sync.RWMutex
	opRegistry = map[string]ExplorationOperator{}
)

func init() {
	MustRegisterOperator(deviationOperator{})
	MustRegisterOperator(similarityOperator{})
	MustRegisterOperator(siblingOperator{outlier: true})
	MustRegisterOperator(siblingOperator{outlier: false})
	MustRegisterOperator(trendOperator{})
}

// RegisterOperator adds an operator under its Name; duplicates error.
func RegisterOperator(op ExplorationOperator) error {
	opMu.Lock()
	defer opMu.Unlock()
	if _, dup := opRegistry[op.Name()]; dup {
		return fmt.Errorf("core: operator %q already registered", op.Name())
	}
	opRegistry[op.Name()] = op
	return nil
}

// MustRegisterOperator is RegisterOperator that panics on error.
func MustRegisterOperator(op ExplorationOperator) {
	if err := RegisterOperator(op); err != nil {
		panic(err)
	}
}

// GetOperator looks up an operator by name ("" selects deviation).
func GetOperator(name string) (ExplorationOperator, error) {
	if name == "" {
		name = "deviation"
	}
	opMu.RLock()
	defer opMu.RUnlock()
	op, ok := opRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown operator %q (have %v)", name, operatorNames())
	}
	return op, nil
}

// OperatorNames returns the registered operator names, sorted.
func OperatorNames() []string {
	opMu.RLock()
	defer opMu.RUnlock()
	return operatorNames()
}

func operatorNames() []string {
	out := make([]string, 0, len(opRegistry))
	for n := range opRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Deviation — the paper's operator

// deviationOperator scores each view by the distance between its
// target and reference distributions — SeeDB's utility
// U(V) = S(P[V(D_Q)], P[V(D)]) (§2). It is the default operator and
// reproduces the pre-seam pipeline byte for byte: same metric call on
// the same aligned distributions, per view, in batch order.
type deviationOperator struct{}

func (deviationOperator) Name() string                 { return "deviation" }
func (deviationOperator) NeedsReference() bool         { return true }
func (deviationOperator) Validate(Options) error       { return nil }
func (deviationOperator) RequiredViews(Options) []View { return nil }
func (deviationOperator) Intent() viz.Intent           { return viz.IntentDeviation }

func (deviationOperator) UtilityBound(metricName string, maxGroups int) float64 {
	return metricBound(metricName, maxGroups)
}

func (deviationOperator) Score(sc *ScoreContext, data []*ViewData) ([]*ViewData, error) {
	out := data[:0]
	for _, d := range data {
		u, err := sc.Metric.Distance(d.Target, d.Comparison)
		if err != nil {
			continue // unscorable view (degenerate distributions)
		}
		d.Utility = u
		out = append(out, d)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Similarity — "views shaped like this probe view"

// similarityResolution is the common grid both distributions are
// resampled onto before shape comparison. Views group by different
// dimensions, so their distributions have incomparable key spaces;
// mass-preserving resampling onto a fixed grid compares shape alone
// (zenvisage's similarity search semantics).
const similarityResolution = 64

// similarityOperator ranks views by how closely their target
// distribution's shape matches a probe view named in the options
// (ProbeDimension/ProbeMeasure/ProbeFunc). Utility is 1/(1+d) for the
// configured metric's distance d on the resampled pair, so closer
// shapes rank higher and utilities stay in (0, 1]. The probe itself is
// evaluated alongside the batch (the engine force-includes it via
// RequiredViews) and excluded from the ranking.
type similarityOperator struct{}

func (similarityOperator) Name() string         { return "similarity" }
func (similarityOperator) NeedsReference() bool { return false }
func (similarityOperator) Intent() viz.Intent   { return viz.IntentSimilarity }

func (similarityOperator) UtilityBound(string, int) float64 { return 1 }

func (similarityOperator) Validate(o Options) error {
	if o.ProbeDimension == "" {
		return fmt.Errorf("core: similarity operator requires ProbeDimension (the probe view's group-by attribute)")
	}
	if _, err := o.probeView(); err != nil {
		return err
	}
	return nil
}

func (o similarityOperator) RequiredViews(opts Options) []View {
	pv, err := opts.probeView()
	if err != nil {
		return nil // Validate already rejected this option set
	}
	return []View{pv}
}

func (similarityOperator) Score(sc *ScoreContext, data []*ViewData) ([]*ViewData, error) {
	pv, err := sc.Opts.probeView()
	if err != nil {
		return nil, err
	}
	probeKey := pv.Key()
	var probe *ViewData
	for _, d := range data {
		if d.View.Key() == probeKey {
			probe = d
			break
		}
	}
	if probe == nil {
		return nil, fmt.Errorf("core: similarity probe view %s produced no data", pv)
	}
	probeShape := resampleMass(probe.Target, similarityResolution)
	out := data[:0]
	for _, d := range data {
		if d.View.Key() == probeKey {
			continue // the probe is the reference, not a result
		}
		dist, err := sc.Metric.Distance(resampleMass(d.Target, similarityResolution), probeShape)
		if err != nil {
			continue
		}
		d.Utility = 1 / (1 + dist)
		out = append(out, d)
	}
	return out, nil
}

// resampleMass redistributes a distribution's probability mass onto a
// fixed grid of L bins by piecewise-constant overlap: source bin i
// covers [i/n, (i+1)/n) of the unit interval and contributes to each
// overlapping target bin proportionally. Mass is preserved, the
// computation is a deterministic function of the input, and two
// distributions of any lengths become comparable.
func resampleMass(p distance.Distribution, L int) distance.Distribution {
	n := len(p)
	if n == 0 {
		return nil
	}
	if n == L {
		out := make(distance.Distribution, L)
		copy(out, p)
		return out
	}
	out := make(distance.Distribution, L)
	fn, fL := float64(n), float64(L)
	for i := 0; i < n; i++ {
		lo, hi := float64(i)/fn, float64(i+1)/fn
		jLo := int(lo * fL)
		for j := jLo; j < L; j++ {
			a, b := float64(j)/fL, float64(j+1)/fL
			if a >= hi {
				break
			}
			if lo > a {
				a = lo
			}
			if hi < b {
				b = hi
			}
			if b > a {
				out[j] += p[i] * (b - a) * fn
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Outlier / typicality — distance from the sibling centroid

// siblingOperator scores each view against the leave-one-out centroid
// of its siblings — the other views grouped by the same dimension,
// whose distributions share a key space. "outlier" ranks views farthest
// from their siblings first (utility = centroid distance); "typical"
// ranks the most representative views first (utility = 1/(1+distance)).
// Views whose dimension carries no siblings are dropped: with nothing
// to compare against, neither outlierness nor typicality is defined.
type siblingOperator struct {
	outlier bool
}

func (s siblingOperator) Name() string {
	if s.outlier {
		return "outlier"
	}
	return "typical"
}
func (siblingOperator) NeedsReference() bool         { return false }
func (siblingOperator) Validate(Options) error       { return nil }
func (siblingOperator) RequiredViews(Options) []View { return nil }

func (s siblingOperator) Intent() viz.Intent {
	if s.outlier {
		return viz.IntentOutlier
	}
	return viz.IntentTypical
}

func (s siblingOperator) UtilityBound(metricName string, maxGroups int) float64 {
	if s.outlier {
		return metricBound(metricName, maxGroups)
	}
	return 1
}

func (s siblingOperator) Score(sc *ScoreContext, data []*ViewData) ([]*ViewData, error) {
	// Sibling groups share a dimension (and bin width): their group
	// labels live in the same domain, so distributions can be aligned
	// on the union of keys and averaged meaningfully.
	groups := map[string][]*ViewData{}
	var groupOrder []string
	for _, d := range data {
		gk := fmt.Sprintf("%s\x00%g", d.View.Dimension, d.View.BinWidth)
		if _, ok := groups[gk]; !ok {
			groupOrder = append(groupOrder, gk)
		}
		groups[gk] = append(groups[gk], d)
	}

	utilities := map[string]float64{}
	scorable := map[string]bool{}
	for _, gk := range groupOrder {
		members := groups[gk]
		if len(members) < 2 {
			continue
		}
		// Deterministic float summation: fixed member order by view key.
		ordered := append([]*ViewData(nil), members...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].View.Key() < ordered[j].View.Key() })
		// Union key space, sorted.
		keySet := map[string]struct{}{}
		for _, m := range ordered {
			for _, k := range m.Keys {
				keySet[k] = struct{}{}
			}
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pos := make(map[string]int, len(keys))
		for i, k := range keys {
			pos[k] = i
		}
		// Extend each member onto the union (absent groups carry zero
		// mass; each extended vector still sums to 1), and accumulate
		// the elementwise sum.
		ext := make([]distance.Distribution, len(ordered))
		sum := make([]float64, len(keys))
		for mi, m := range ordered {
			v := make(distance.Distribution, len(keys))
			for i, k := range m.Keys {
				v[pos[k]] = m.Target[i]
			}
			ext[mi] = v
			for i := range v {
				sum[i] += v[i]
			}
		}
		n := float64(len(ordered))
		for mi, m := range ordered {
			centroid := make(distance.Distribution, len(keys))
			for i := range centroid {
				centroid[i] = (sum[i] - ext[mi][i]) / (n - 1)
			}
			dist, err := sc.Metric.Distance(ext[mi], centroid)
			if err != nil {
				continue
			}
			key := m.View.Key()
			scorable[key] = true
			if s.outlier {
				utilities[key] = dist
			} else {
				utilities[key] = 1 / (1 + dist)
			}
		}
	}

	out := data[:0]
	for _, d := range data {
		if !scorable[d.View.Key()] {
			continue
		}
		d.Utility = utilities[d.View.Key()]
		out = append(out, d)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Trend — monotonicity over ordered dimensions

// trendOperator ranks views by how monotone their target series is
// over the dimension's intrinsic order: utility is |τ|, the absolute
// Kendall rank correlation between group position (viz.KeyOrder:
// numbers, timestamps, month names) and the raw aggregate value. Views
// over unordered dimensions, or with fewer than three ordered groups,
// have no trend and are dropped.
type trendOperator struct{}

func (trendOperator) Name() string                     { return "trend" }
func (trendOperator) NeedsReference() bool             { return false }
func (trendOperator) Validate(Options) error           { return nil }
func (trendOperator) RequiredViews(Options) []View     { return nil }
func (trendOperator) Intent() viz.Intent               { return viz.IntentTrend }
func (trendOperator) UtilityBound(string, int) float64 { return 1 }

func (trendOperator) Score(_ *ScoreContext, data []*ViewData) ([]*ViewData, error) {
	out := data[:0]
	for _, d := range data {
		tau, ok := kendallTrend(d.Keys, d.TargetRaw)
		if !ok {
			continue
		}
		d.Utility = math.Abs(tau)
		out = append(out, d)
	}
	return out, nil
}

// kendallTrend computes Kendall's τ between each group's intrinsic
// position and its value. It reports !ok when any key lacks an
// intrinsic order, fewer than three groups exist, or every pair is
// tied (no rankable signal).
func kendallTrend(keys []string, values []float64) (float64, bool) {
	if len(keys) < 3 {
		return 0, false
	}
	positions := make([]float64, len(keys))
	for i, k := range keys {
		p, ok := viz.KeyOrder(k)
		if !ok {
			return 0, false
		}
		positions[i] = p
	}
	var concordant, discordant, comparable int
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			dp := positions[j] - positions[i]
			if dp == 0 {
				continue // tied positions carry no order information
			}
			comparable++
			dv := values[j] - values[i]
			switch {
			case dp*dv > 0:
				concordant++
			case dp*dv < 0:
				discordant++
			}
		}
	}
	if comparable == 0 {
		return 0, false
	}
	return float64(concordant-discordant) / float64(comparable), true
}

// ---------------------------------------------------------------------
// Probe view resolution (Options helper)

// probeView materializes the probe view the similarity operator
// compares against from the Probe* option fields.
func (o Options) probeView() (View, error) {
	fn := o.ProbeFunc
	if fn == "" {
		if o.ProbeMeasure == "" {
			fn = "count"
		} else {
			return View{}, fmt.Errorf("core: ProbeFunc is required with ProbeMeasure %q (e.g. \"sum\")", o.ProbeMeasure)
		}
	}
	f, err := engine.ParseAggFunc(fn)
	if err != nil {
		return View{}, fmt.Errorf("core: ProbeFunc %q: %w", strings.ToLower(fn), err)
	}
	return View{Dimension: o.ProbeDimension, Measure: o.ProbeMeasure, Func: f, BinWidth: o.ProbeBinWidth}, nil
}
