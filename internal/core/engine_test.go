package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"seedb/internal/datagen"
	"seedb/internal/engine"
)

// laserwaveEngine builds a SeeDB engine over the paper's running
// example.
func laserwaveEngine(t *testing.T, scen datagen.LaserwaveScenario) *Engine {
	t.Helper()
	cat := engine.NewCatalog()
	if err := cat.Register(datagen.Laserwave("sales", scen)); err != nil {
		t.Fatal(err)
	}
	return New(engine.NewExecutor(cat))
}

func laserwaveQuery() Query {
	return Query{Table: "sales", Predicate: engine.Eq("product", engine.String("Laserwave"))}
}

// TestLaserwaveTable1Distribution reproduces E1: the target view's
// distribution must be exactly the paper's §2 normalization
// (180.55/538.18, 145.50/538.18, 122.00/538.18, 90.13/538.18).
func TestLaserwaveTable1Distribution(t *testing.T) {
	e := laserwaveEngine(t, datagen.ScenarioA)
	opts := DefaultOptions()
	opts.K = 5
	opts.AggFuncs = []engine.AggFunc{engine.AggSum}
	res, err := e.Recommend(context.Background(), laserwaveQuery(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var storeView *ViewData
	for _, r := range res.Recommendations {
		if r.Data.View.Dimension == "store" && r.Data.View.Measure == "amount" {
			storeView = r.Data
		}
	}
	if storeView == nil {
		t.Fatal("SUM(amount) BY store view not recommended")
	}
	want := map[string]float64{
		"Cambridge, MA":     180.55 / 538.18,
		"Seattle, WA":       145.50 / 538.18,
		"New York, NY":      122.00 / 538.18,
		"San Francisco, CA": 90.13 / 538.18,
	}
	for i, k := range storeView.Keys {
		if w, ok := want[k]; ok {
			if math.Abs(storeView.Target[i]-w) > 1e-9 {
				t.Errorf("P[V(D_Q)][%s] = %v, want %v", k, storeView.Target[i], w)
			}
		}
	}
	if res.TargetRowCount != 8 {
		t.Errorf("|D_Q| = %d, want 8 Laserwave rows", res.TargetRowCount)
	}
}

// TestLaserwaveScenarios reproduces E2: the store view must score much
// higher under Scenario A (opposite overall trend, Figure 2) than
// under Scenario B (same trend, Figure 3), for every metric.
func TestLaserwaveScenarios(t *testing.T) {
	for _, metric := range []string{"emd", "euclidean", "kl", "js", "l1"} {
		utilities := map[datagen.LaserwaveScenario]float64{}
		for _, scen := range []datagen.LaserwaveScenario{datagen.ScenarioA, datagen.ScenarioB} {
			e := laserwaveEngine(t, scen)
			opts := DefaultOptions()
			opts.Metric = metric
			opts.AggFuncs = []engine.AggFunc{engine.AggSum}
			res, err := e.Recommend(context.Background(), laserwaveQuery(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range res.AllScores {
				if s.View.Dimension == "store" && s.View.Measure == "amount" && s.View.Func == engine.AggSum {
					utilities[scen] = s.Utility
				}
			}
		}
		if utilities[datagen.ScenarioA] <= utilities[datagen.ScenarioB] {
			t.Errorf("%s: U(A)=%v must exceed U(B)=%v", metric,
				utilities[datagen.ScenarioA], utilities[datagen.ScenarioB])
		}
	}
}

// syntheticEngine builds an engine over a planted-deviation synthetic
// table.
func syntheticEngine(t testing.TB, rows int, seed int64) (*Engine, Query, datagen.GroundTruth) {
	t.Helper()
	cfg := datagen.DefaultSynthetic("syn", rows, seed)
	tb, gt, err := datagen.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	return New(engine.NewExecutor(cat)), Query{Table: "syn", Predicate: gt.Predicate}, gt
}

// TestPlantedViewsRankTop reproduces E14's correctness side: the two
// planted deviations must be the top-ranked dimensions.
func TestPlantedViewsRankTop(t *testing.T) {
	e, q, gt := syntheticEngine(t, 20000, 21)
	opts := DefaultOptions()
	opts.K = 4
	// Ground truth is defined on dimension-side views; binned views of
	// the planted measures expose the same deviations from the measure
	// side and would legitimately outrank them.
	opts.BinContinuousDims = false
	res, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	plantedDims := map[string]bool{}
	for _, d := range gt.PlantedViews {
		plantedDims[d.Dim] = true
	}
	// The top len(planted) distinct dimensions should be the planted
	// ones.
	seen := map[string]bool{}
	var topDims []string
	for _, r := range res.Recommendations {
		d := r.Data.View.Dimension
		if !seen[d] {
			seen[d] = true
			topDims = append(topDims, d)
		}
		if len(topDims) == len(plantedDims) {
			break
		}
	}
	for _, d := range topDims {
		if !plantedDims[d] {
			t.Errorf("top dimension %q is not planted (planted: d1, d2); top recs: %v", d, topDims)
		}
	}
}

// allScoresMap keys utilities by view.
func allScoresMap(res *Result) map[string]float64 {
	out := map[string]float64{}
	for _, s := range res.AllScores {
		out[s.View.Key()] = s.Utility
	}
	return out
}

// TestOptimizerEquivalence is the central invariant: every optimizer
// configuration must produce the same utilities (within float
// tolerance) as the basic framework. The optimizations only change
// HOW the views are computed, never WHAT they compute.
func TestOptimizerEquivalence(t *testing.T) {
	e, q, _ := syntheticEngine(t, 8000, 33)
	ctx := context.Background()

	base := BasicOptions()
	base.K = 10
	base.AggFuncs = []engine.AggFunc{engine.AggSum, engine.AggCount, engine.AggAvg, engine.AggMin, engine.AggMax}
	baseRes, err := e.Recommend(ctx, q, base)
	if err != nil {
		t.Fatal(err)
	}
	baseScores := allScoresMap(baseRes)
	if len(baseScores) == 0 {
		t.Fatal("no views scored")
	}

	variants := map[string]func(*Options){
		"combine-target-comparison": func(o *Options) { o.CombineTargetComparison = true },
		"combine-aggregates": func(o *Options) {
			o.CombineAggregates = true
		},
		"grouping-sets": func(o *Options) {
			o.CombineAggregates = true
			o.CombineGroupBys = CombineGroupingSets
		},
		"grouping-sets-small-budget": func(o *Options) {
			o.CombineAggregates = true
			o.CombineGroupBys = CombineGroupingSets
			o.GroupBudget = 25
		},
		"composite-key": func(o *Options) {
			o.CombineAggregates = true
			o.CombineGroupBys = CombineCompositeKey
			o.GroupBudget = 200
		},
		"composite-key-ffd": func(o *Options) {
			o.CombineAggregates = true
			o.CombineGroupBys = CombineCompositeKey
			o.GroupBudget = 200
			o.ExactPacking = false
		},
		"parallel": func(o *Options) {
			o.CombineAggregates = true
			o.CombineGroupBys = CombineGroupingSets
			o.Parallelism = 8
		},
		"all-optimizations": func(o *Options) {
			o.CombineTargetComparison = true
			o.CombineAggregates = true
			o.CombineGroupBys = CombineGroupingSets
			o.Parallelism = 8
		},
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			opts := BasicOptions()
			opts.K = 10
			opts.AggFuncs = base.AggFuncs
			mutate(&opts)
			res, err := e.Recommend(ctx, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			scores := allScoresMap(res)
			if len(scores) != len(baseScores) {
				t.Fatalf("scored %d views, want %d", len(scores), len(baseScores))
			}
			for key, want := range baseScores {
				got, ok := scores[key]
				if !ok {
					t.Fatalf("view %q missing", key)
				}
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("view %q utility = %v, want %v", key, got, want)
				}
			}
			// Top recommendation must agree.
			if res.Recommendations[0].Data.View != baseRes.Recommendations[0].Data.View {
				t.Errorf("top view %v differs from baseline %v",
					res.Recommendations[0].Data.View, baseRes.Recommendations[0].Data.View)
			}
		})
	}
}

// TestOptimizationsReduceScans verifies the mechanism behind the
// speedups: combined plans issue far fewer queries and scans.
func TestOptimizationsReduceScans(t *testing.T) {
	e, q, _ := syntheticEngine(t, 4000, 5)
	ctx := context.Background()

	basic := BasicOptions()
	basic.K = 5
	resBasic, err := e.Recommend(ctx, q, basic)
	if err != nil {
		t.Fatal(err)
	}

	full := DefaultOptions()
	full.K = 5
	full.PruneLowVariance = false
	full.PruneCorrelated = false
	resFull, err := e.Recommend(ctx, q, full)
	if err != nil {
		t.Fatal(err)
	}

	if resFull.Stats.QueriesIssued >= resBasic.Stats.QueriesIssued {
		t.Errorf("optimized queries (%d) should be far fewer than basic (%d)",
			resFull.Stats.QueriesIssued, resBasic.Stats.QueriesIssued)
	}
	if resFull.Stats.RowsRead >= resBasic.Stats.RowsRead {
		t.Errorf("optimized rows read (%d) should be fewer than basic (%d)",
			resFull.Stats.RowsRead, resBasic.Stats.RowsRead)
	}
	// Combining target+comparison alone halves queries: 1 per view
	// group rather than 2.
	half := BasicOptions()
	half.K = 5
	half.CombineTargetComparison = true
	resHalf, err := e.Recommend(ctx, q, half)
	if err != nil {
		t.Fatal(err)
	}
	// basic: 2 queries per view + 1 count; half: 1 per view + 1 count.
	gotRatio := float64(resHalf.Stats.QueriesIssued-1) / float64(resBasic.Stats.QueriesIssued-1)
	if math.Abs(gotRatio-0.5) > 0.01 {
		t.Errorf("combine-target-comparison query ratio = %v, want 0.5", gotRatio)
	}
}

func TestSamplingApproximation(t *testing.T) {
	e, q, _ := syntheticEngine(t, 30000, 17)
	ctx := context.Background()

	exact := DefaultOptions()
	exact.K = 5
	// Binned numeric dims produce sparse tail buckets whose AVG views
	// are high-variance under sampling; this test checks sampling on
	// the categorical dimensions (E8 covers the rest with MAE).
	exact.BinContinuousDims = false
	exactRes, err := e.Recommend(ctx, q, exact)
	if err != nil {
		t.Fatal(err)
	}

	sampled := exact
	sampled.K = 5
	sampled.SampleFraction = 0.3
	sampled.SampleMinRows = 1000
	sampled.SampleSeed = 42
	sampledRes, err := e.Recommend(ctx, q, sampled)
	if err != nil {
		t.Fatal(err)
	}
	if !sampledRes.Stats.Sampled || sampledRes.Stats.SampleFraction != 0.3 {
		t.Error("sampling flags not recorded")
	}
	if exactRes.Stats.Sampled {
		t.Error("exact run must not be flagged sampled")
	}

	// Top view must survive sampling at 30%; utilities approximate.
	if sampledRes.Recommendations[0].Data.View != exactRes.Recommendations[0].Data.View {
		t.Errorf("sampled top view %v != exact %v",
			sampledRes.Recommendations[0].Data.View, exactRes.Recommendations[0].Data.View)
	}
	// Per-view sampling noise can be material for near-flat views (the
	// target side has only ~|D_Q|·fraction rows); check a loose
	// per-view cap plus a tight mean absolute error.
	exactScores := allScoresMap(exactRes)
	var mae float64
	var n int
	for _, s := range sampledRes.AllScores {
		if w, ok := exactScores[s.View.Key()]; ok {
			diff := math.Abs(s.Utility - w)
			if diff > 0.35 {
				t.Errorf("sampled utility for %v = %v, exact %v (too far)", s.View, s.Utility, w)
			}
			mae += diff
			n++
		}
	}
	if n > 0 && mae/float64(n) > 0.1 {
		t.Errorf("mean absolute sampling error = %v, want < 0.1", mae/float64(n))
	}
	// Below the row threshold, sampling must not kick in.
	small := exact
	small.SampleFraction = 0.3
	small.SampleMinRows = 1_000_000
	smallRes, err := e.Recommend(ctx, q, small)
	if err != nil {
		t.Fatal(err)
	}
	if smallRes.Stats.Sampled {
		t.Error("sampling must respect SampleMinRows")
	}
}

func TestPhasedMatchesExact(t *testing.T) {
	e, q, _ := syntheticEngine(t, 10000, 3)
	ctx := context.Background()

	exact := DefaultOptions()
	exact.K = 5
	exact.AggFuncs = []engine.AggFunc{engine.AggSum, engine.AggCount, engine.AggMin, engine.AggMax}
	exactRes, err := e.Recommend(ctx, q, exact)
	if err != nil {
		t.Fatal(err)
	}

	phased := exact
	phased.Phases = 8
	phased.PhaseConfidence = 0.95
	phasedRes, err := e.Recommend(ctx, q, phased)
	if err != nil {
		t.Fatal(err)
	}

	// Surviving views must have EXACT utilities (phases partition the
	// data; merging is lossless for these aggregates).
	exactScores := allScoresMap(exactRes)
	for _, s := range phasedRes.AllScores {
		w, ok := exactScores[s.View.Key()]
		if !ok {
			t.Fatalf("phased scored unknown view %v", s.View)
		}
		if math.Abs(s.Utility-w) > 1e-6*(1+w) {
			t.Errorf("phased utility %v = %v, exact %v", s.View, s.Utility, w)
		}
	}
	// Top-k must be identical.
	if len(phasedRes.Recommendations) != len(exactRes.Recommendations) {
		t.Fatalf("phased returned %d recs, exact %d", len(phasedRes.Recommendations), len(exactRes.Recommendations))
	}
	for i := range exactRes.Recommendations {
		if phasedRes.Recommendations[i].Data.View != exactRes.Recommendations[i].Data.View {
			t.Errorf("rank %d: phased %v, exact %v", i+1,
				phasedRes.Recommendations[i].Data.View, exactRes.Recommendations[i].Data.View)
		}
	}
}

func TestPhasedRejectsUnmergeableAggregates(t *testing.T) {
	e, q, _ := syntheticEngine(t, 1000, 3)
	opts := DefaultOptions()
	opts.Phases = 4
	opts.AggFuncs = []engine.AggFunc{engine.AggVariance}
	if _, err := e.Recommend(context.Background(), q, opts); err == nil {
		t.Error("phased VAR must error (not partition-mergeable without sum-of-squares partials)")
	}
}

// TestPhasedAvgMatchesExact: AVG views are carried through phases as
// SUM+COUNT pairs, so phased utilities match single-pass execution
// exactly (phases partition the table; the partials merge losslessly).
func TestPhasedAvgMatchesExact(t *testing.T) {
	e, q, _ := syntheticEngine(t, 4000, 7)
	opts := DefaultOptions()
	opts.AggFuncs = []engine.AggFunc{engine.AggAvg}
	opts.PruneLowVariance = false
	opts.PruneCorrelated = false
	exact, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Phases = 4
	opts.PhaseConfidence = 0.9999 // keep every view so scores are comparable
	phased, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	exactScores := allScoresMap(exact)
	if len(phased.AllScores) == 0 {
		t.Fatal("phased AVG produced no views")
	}
	for _, s := range phased.AllScores {
		w, ok := exactScores[s.View.Key()]
		if !ok {
			t.Fatalf("phased scored unknown view %v", s.View)
		}
		if math.Abs(s.Utility-w) > 1e-9*(1+w) {
			t.Errorf("phased AVG utility %v = %v, exact %v", s.View, s.Utility, w)
		}
	}
}

func TestRecommendErrors(t *testing.T) {
	e, q, _ := syntheticEngine(t, 500, 3)
	ctx := context.Background()

	opts := DefaultOptions()
	opts.K = 0
	if _, err := e.Recommend(ctx, q, opts); err == nil {
		t.Error("K=0 must error")
	}
	opts = DefaultOptions()
	opts.Metric = "nope"
	if _, err := e.Recommend(ctx, q, opts); err == nil {
		t.Error("unknown metric must error")
	}
	if _, err := e.Recommend(ctx, Query{Table: "missing"}, DefaultOptions()); err == nil {
		t.Error("missing table must error")
	}
	empty := Query{Table: "syn", Predicate: engine.Eq("d0", engine.String("no-such-value"))}
	if _, err := e.Recommend(ctx, empty, DefaultOptions()); err == nil {
		t.Error("empty D_Q must error")
	}
	badPred := Query{Table: "syn", Predicate: engine.Eq("nope", engine.Int(1))}
	if _, err := e.Recommend(ctx, badPred, DefaultOptions()); err == nil {
		t.Error("unbindable predicate must error")
	}
}

func TestRecommendAllPruned(t *testing.T) {
	// A table whose only dimension is constant: variance pruning
	// eliminates everything.
	tb := engine.MustNewTable("c", engine.Schema{
		{Name: "d", Type: engine.TypeString},
		{Name: "m", Type: engine.TypeFloat},
	})
	for i := 0; i < 100; i++ {
		_ = tb.AppendRow(engine.String("only"), engine.Float(float64(i)))
	}
	cat := engine.NewCatalog()
	_ = cat.Register(tb)
	e := New(engine.NewExecutor(cat))
	_, err := e.Recommend(context.Background(), Query{Table: "c"}, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "pruned") {
		t.Errorf("all-pruned should error helpfully, got %v", err)
	}
}

func TestIncludeWorstViews(t *testing.T) {
	e, q, _ := syntheticEngine(t, 5000, 7)
	opts := DefaultOptions()
	opts.K = 3
	opts.IncludeWorst = 2
	res, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorstViews) != 2 {
		t.Fatalf("worst views = %d, want 2", len(res.WorstViews))
	}
	// Worst views must score below all recommendations.
	minTop := res.Recommendations[len(res.Recommendations)-1].Data.Utility
	for _, w := range res.WorstViews {
		if w.Data.Utility > minTop {
			t.Errorf("worst view %v utility %v exceeds weakest recommendation %v",
				w.Data.View, w.Data.Utility, minTop)
		}
	}
	// Worst list is worst-first.
	if len(res.WorstViews) == 2 && res.WorstViews[0].Data.Utility > res.WorstViews[1].Data.Utility {
		t.Error("worst views must be ordered worst-first")
	}
}

func TestRecommendationPackaging(t *testing.T) {
	e, q, _ := syntheticEngine(t, 2000, 9)
	opts := DefaultOptions()
	opts.K = 3
	res, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != "emd" {
		t.Errorf("metric = %q", res.Metric)
	}
	for i, r := range res.Recommendations {
		if r.Rank != i+1 {
			t.Errorf("rank %d mislabeled as %d", i+1, r.Rank)
		}
		if !strings.Contains(r.TargetSQL, "WHERE d0 = 'd0_v0'") {
			t.Errorf("TargetSQL = %q missing predicate", r.TargetSQL)
		}
		if strings.Contains(r.ComparisonSQL, "WHERE") {
			t.Errorf("ComparisonSQL = %q must not filter", r.ComparisonSQL)
		}
		if len(r.Data.Keys) == 0 || len(r.Data.Target) != len(r.Data.Keys) {
			t.Error("view data incomplete")
		}
	}
	// AllScores descending.
	for i := 1; i < len(res.AllScores); i++ {
		if res.AllScores[i].Utility > res.AllScores[i-1].Utility {
			t.Error("AllScores must be sorted descending")
		}
	}
	if res.Stats.ElapsedMillis <= 0 {
		t.Error("elapsed time not recorded")
	}
	if res.Stats.CandidateViews <= 0 || res.Stats.ExecutedViews <= 0 {
		t.Errorf("stats incomplete: %+v", res.Stats)
	}
}

func TestRecommendOnRealisticDatasets(t *testing.T) {
	cases := []struct {
		name  string
		table *engine.Table
		query Query
		// expectDim must be the top-ranked dimension once structural
		// dims (hierarchical children of the filter attribute, whose
		// deviation is implied by the filter itself) are set aside.
		expectDim  string
		structural map[string]bool
	}{
		{
			name:  "superstore-furniture",
			table: datagen.Superstore("orders", 20000, 42),
			query: Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))},
			// Planted: furniture profit by region deviates wildly.
			// subcategory is structural (the Furniture subset contains
			// only Furniture subcategories); the binned numeric dims
			// (discount/profit/sales) carry their own planted
			// deviations, so region must lead among the remaining
			// categorical dimensions.
			expectDim:  "region",
			structural: map[string]bool{"subcategory": true},
		},
		{
			name:       "elections-democratic",
			table:      datagen.Elections("fec", 20000, 42),
			query:      Query{Table: "fec", Predicate: engine.Eq("party", engine.String("Democratic"))},
			expectDim:  "state",
			structural: map[string]bool{"candidate": true}, // candidates belong to one party
		},
		{
			name:       "medical-sepsis",
			table:      datagen.Medical("mimic", 20000, 42),
			query:      Query{Table: "mimic", Predicate: engine.Eq("diagnosis_group", engine.String("Sepsis"))},
			expectDim:  "age_bucket",
			structural: map[string]bool{"ward": true}, // sepsis→ICU skew is also planted
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := engine.NewCatalog()
			if err := cat.Register(tc.table); err != nil {
				t.Fatal(err)
			}
			e := New(engine.NewExecutor(cat))
			opts := DefaultOptions()
			opts.K = 8
			res, err := e.Recommend(context.Background(), tc.query, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Recommendations) == 0 {
				t.Fatal("no recommendations")
			}
			// First categorical (unbinned) dimension outside the
			// structural set; binned numeric dims carry their own
			// planted deviations and are checked by E14 instead.
			var firstDim string
			for _, s := range res.AllScores {
				if s.View.BinWidth == 0 && !tc.structural[s.View.Dimension] {
					firstDim = s.View.Dimension
					break
				}
			}
			if firstDim != tc.expectDim {
				var dims []string
				for i, s := range res.AllScores {
					if i >= 8 {
						break
					}
					dims = append(dims, fmt.Sprintf("%s(%.3f)", s.View, s.Utility))
				}
				t.Errorf("top non-structural dimension = %q, want %q; top views: %v", firstDim, tc.expectDim, dims)
			}
		})
	}
}

func TestRecommendContextCancellation(t *testing.T) {
	e, q, _ := syntheticEngine(t, 50000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Recommend(ctx, q, DefaultOptions()); err == nil {
		t.Error("cancelled context must abort Recommend")
	}
}

func TestMetricBound(t *testing.T) {
	if metricBound("emd", 10) != 9 {
		t.Error("emd bound = card-1")
	}
	if metricBound("emd", 1) != 1 {
		t.Error("emd bound floor")
	}
	if metricBound("euclidean", 5) != math.Sqrt2 {
		t.Error("euclidean bound")
	}
	if metricBound("js", 5) != math.Sqrt(math.Ln2) {
		t.Error("js bound")
	}
	if metricBound("l1", 5) != 2 {
		t.Error("l1 bound")
	}
	if metricBound("kl", 5) <= 0 {
		t.Error("kl bound")
	}
	if metricBound("custom", 5) != 2 {
		t.Error("default bound")
	}
}

func TestKthLargest(t *testing.T) {
	type s struct{ v float64 }
	items := []s{{3}, {1}, {4}, {1}, {5}}
	if got := kthLargest(items, 1, func(x s) float64 { return x.v }); got != 5 {
		t.Errorf("1st = %v", got)
	}
	if got := kthLargest(items, 3, func(x s) float64 { return x.v }); got != 3 {
		t.Errorf("3rd = %v", got)
	}
	if got := kthLargest(items, 99, func(x s) float64 { return x.v }); got != 1 {
		t.Errorf("clamped = %v", got)
	}
}
