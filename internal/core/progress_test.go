package core

import (
	"context"
	"testing"

	"seedb/internal/engine"
)

// collectSnapshots runs RecommendProgress and returns the result plus
// every snapshot emitted, in order.
func collectSnapshots(t *testing.T, e *Engine, q Query, opts Options) (*Result, []*ProgressSnapshot) {
	t.Helper()
	var snaps []*ProgressSnapshot
	res, err := e.RecommendProgress(context.Background(), q, opts, func(s *ProgressSnapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, snaps
}

// TestProgressSnapshotsPerPhase: phased execution emits one snapshot
// per phase, phase indices strictly increasing, exactly one final
// snapshot (the last), and the final ranking matches the Result.
func TestProgressSnapshotsPerPhase(t *testing.T) {
	e, q, _ := syntheticEngine(t, 8000, 3)
	opts := DefaultOptions()
	opts.K = 4
	opts.Phases = 5
	res, snaps := collectSnapshots(t, e, q, opts)

	if len(snaps) != opts.Phases {
		t.Fatalf("got %d snapshots, want %d (one per phase)", len(snaps), opts.Phases)
	}
	for i, s := range snaps {
		if s.Phase != i+1 {
			t.Errorf("snapshot %d has Phase=%d, want %d", i, s.Phase, i+1)
		}
		if s.Phases != opts.Phases {
			t.Errorf("snapshot %d has Phases=%d, want %d", i, s.Phases, opts.Phases)
		}
		if got, want := s.Final, i == len(snaps)-1; got != want {
			t.Errorf("snapshot %d Final=%v, want %v", i, got, want)
		}
		if s.Survivors != len(s.Ranking) {
			t.Errorf("snapshot %d Survivors=%d but ranking has %d entries", i, s.Survivors, len(s.Ranking))
		}
		for j := 1; j < len(s.Ranking); j++ {
			if s.Ranking[j].Utility > s.Ranking[j-1].Utility {
				t.Errorf("snapshot %d ranking not sorted at %d", i, j)
			}
		}
		if !s.Final {
			if s.Epsilon <= 0 {
				t.Errorf("interim snapshot %d has Epsilon=%v, want > 0", i, s.Epsilon)
			}
			for _, en := range s.Ranking {
				if en.Upper-en.Lower <= 0 {
					t.Errorf("interim entry %v has empty confidence interval", en.View)
				}
			}
		}
	}

	final := snaps[len(snaps)-1]
	if final.Epsilon != 0 {
		t.Errorf("final snapshot Epsilon=%v, want 0", final.Epsilon)
	}
	if len(final.Ranking) != len(res.AllScores) {
		t.Fatalf("final ranking has %d entries, result scored %d views", len(final.Ranking), len(res.AllScores))
	}
	for i, sc := range res.AllScores {
		if final.Ranking[i].View != sc.View || final.Ranking[i].Utility != sc.Utility {
			t.Errorf("final ranking[%d] = %v(%v), result AllScores[%d] = %v(%v)",
				i, final.Ranking[i].View, final.Ranking[i].Utility, i, sc.View, sc.Utility)
		}
	}
}

// TestProgressPruneAccounting: across all snapshots, pruned + final
// survivors must account for every executed view, and PrunedTotal must
// be the running sum of PrunedNow.
func TestProgressPruneAccounting(t *testing.T) {
	e, q, _ := syntheticEngine(t, 10000, 3)
	opts := DefaultOptions()
	opts.K = 2 // small k so confidence-interval pruning has room to fire
	opts.Phases = 8
	res, snaps := collectSnapshots(t, e, q, opts)

	running := 0
	for _, s := range snaps {
		running += len(s.PrunedNow)
		if s.PrunedTotal != running {
			t.Errorf("phase %d: PrunedTotal=%d, running sum of PrunedNow=%d", s.Phase, s.PrunedTotal, running)
		}
	}
	final := snaps[len(snaps)-1]
	if got := res.Stats.PrunedViews[PrunedPhased]; got != final.PrunedTotal {
		t.Errorf("result reports %d phased prunes, final snapshot %d", got, final.PrunedTotal)
	}
	// Views that scored in the final result plus views pruned mid-run
	// must cover every view the run set out to execute. (Views whose
	// comparison side is empty score nil and are dropped silently, so
	// <= rather than ==.)
	if total := len(res.AllScores) + final.PrunedTotal; total > res.Stats.ExecutedViews {
		t.Errorf("scores(%d) + pruned(%d) exceed executed views (%d)",
			len(res.AllScores), final.PrunedTotal, res.Stats.ExecutedViews)
	}
}

// TestProgressListenerDoesNotChangeResult: a Recommend with a listener
// must return exactly what a plain Recommend returns.
func TestProgressListenerDoesNotChangeResult(t *testing.T) {
	e, q, _ := syntheticEngine(t, 6000, 5)
	ctx := context.Background()
	opts := DefaultOptions()
	opts.K = 3
	opts.Phases = 4

	plain, err := e.Recommend(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := e.RecommendProgress(ctx, q, opts, func(*ProgressSnapshot) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.AllScores) != len(observed.AllScores) {
		t.Fatalf("listener changed score count: %d vs %d", len(plain.AllScores), len(observed.AllScores))
	}
	for i := range plain.AllScores {
		if plain.AllScores[i] != observed.AllScores[i] {
			t.Errorf("score %d differs: %+v vs %+v", i, plain.AllScores[i], observed.AllScores[i])
		}
	}
}

// TestProgressSinglePass: without phased execution the listener still
// gets exactly one snapshot — the final ranking.
func TestProgressSinglePass(t *testing.T) {
	e, q, _ := syntheticEngine(t, 2000, 3)
	opts := DefaultOptions()
	opts.K = 3
	res, snaps := collectSnapshots(t, e, q, opts)
	if len(snaps) != 1 {
		t.Fatalf("single-pass run emitted %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if !s.Final || s.Phase != 1 || s.Phases != 1 {
		t.Errorf("single-pass snapshot = {Final:%v Phase:%d Phases:%d}, want final 1/1", s.Final, s.Phase, s.Phases)
	}
	if len(s.Ranking) != len(res.AllScores) {
		t.Errorf("ranking %d entries, result %d", len(s.Ranking), len(res.AllScores))
	}
}

// TestProgressCancellationBetweenPhases: a context cancelled by a
// listener stops the run at the next phase boundary with the context's
// error.
func TestProgressCancellationBetweenPhases(t *testing.T) {
	e, q, _ := syntheticEngine(t, 8000, 3)
	opts := DefaultOptions()
	opts.Phases = 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err := e.RecommendProgress(ctx, q, opts, func(*ProgressSnapshot) {
		seen++
		cancel()
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if seen == 0 {
		t.Fatal("listener never ran before cancellation took effect")
	}
	if seen >= opts.Phases {
		t.Errorf("run completed all %d phases despite cancellation after the first", opts.Phases)
	}
}

// TestProgressPhasesClampedToRows: a tiny table clamps the phase count
// and the snapshots reflect the actual count used.
func TestProgressPhasesClampedToRows(t *testing.T) {
	tb := engine.MustNewTable("tiny", engine.Schema{
		{Name: "d", Type: engine.TypeString},
		{Name: "m", Type: engine.TypeInt},
	})
	rows := [][]engine.Value{
		{engine.String("a"), engine.Int(1)},
		{engine.String("b"), engine.Int(2)},
		{engine.String("a"), engine.Int(3)},
	}
	if _, err := tb.Append(rows); err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tb); err != nil {
		t.Fatal(err)
	}
	e := New(engine.NewExecutor(cat))
	opts := DefaultOptions()
	opts.K = 1
	opts.Phases = 100 // far more than 3 rows
	opts.Dimensions = []string{"d"}
	opts.Measures = []string{"m"}
	opts.PruneLowVariance = false
	_, snaps := collectSnapshots(t, e, Query{Table: "tiny", Predicate: engine.Eq("d", engine.String("a"))}, opts)
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	final := snaps[len(snaps)-1]
	if final.Phases != 3 {
		t.Errorf("final snapshot Phases=%d, want clamped 3", final.Phases)
	}
}
