package core

import "container/heap"

// topK maintains the k highest-utility views seen so far using a
// min-heap: the root is the weakest of the current top k, so each
// candidate is compared against it in O(1) and replaces it in
// O(log k). This is the View Processor's "select the top k views with
// the highest utility" step, done streaming so SeeDB never holds more
// than k full view payloads.
type topK struct {
	k     int
	items viewHeap
}

// entry pairs a utility with its payload.
type entry struct {
	utility float64
	data    *ViewData
}

type viewHeap []entry

func (h viewHeap) Len() int { return len(h) }
func (h viewHeap) Less(i, j int) bool {
	if h[i].utility != h[j].utility {
		return h[i].utility < h[j].utility
	}
	// Deterministic tie-break so equal-utility runs are stable.
	return h[i].data.View.Key() > h[j].data.View.Key()
}
func (h viewHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *viewHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *viewHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newTopK returns a collector for the k best views.
func newTopK(k int) *topK { return &topK{k: k} }

// Offer considers a view; it returns true if the view entered the top
// k (possibly evicting another).
func (t *topK) Offer(utility float64, data *ViewData) bool {
	if t.k <= 0 {
		return false
	}
	if len(t.items) < t.k {
		heap.Push(&t.items, entry{utility, data})
		return true
	}
	weakest := t.items[0]
	if utility < weakest.utility ||
		(utility == weakest.utility && data.View.Key() > weakest.data.View.Key()) {
		return false
	}
	t.items[0] = entry{utility, data}
	heap.Fix(&t.items, 0)
	return true
}

// Threshold returns the utility of the weakest retained view, and
// whether the collector is full. Phased execution prunes against this.
func (t *topK) Threshold() (float64, bool) {
	if len(t.items) < t.k || len(t.items) == 0 {
		return 0, false
	}
	return t.items[0].utility, true
}

// Sorted drains the heap and returns views in descending utility
// order. The collector is empty afterwards.
func (t *topK) Sorted() []*ViewData {
	out := make([]*ViewData, len(t.items))
	for i := len(t.items) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.items).(entry).data
	}
	return out
}

// Len returns how many views are currently held.
func (t *topK) Len() int { return len(t.items) }
