package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"seedb/internal/engine"
)

// ExecCache is the seam between plan execution and the service layer's
// view-result cache. Keys are content-addressed digests of everything
// that determines an exec-unit query's output — table fingerprint,
// grouping structure, aggregate list, predicate, sampling, and row
// range — so a hit is always safe to reuse and invalidation is
// implicit: mutating or reloading a table changes its fingerprint and
// the old entries simply age out.
//
// The fingerprint keying is all-or-nothing per table VERSION, but a
// miss caused by an append is no longer an all-or-nothing recompute:
// the engine's chunk-partial store (engine.PartialStore, installed by
// the service layer) answers the recompute by merging the previous
// version's sealed-chunk partials with a scan of just the appended
// delta — byte-identical to a cold scan, per the engine's exact
// accumulators — so the query against version v+Δ costs O(Δ) even
// though its cache entry is new. The two layers compose: this cache
// de-duplicates identical queries within a version, the partial store
// carries the work across versions.
//
// GetOrCompute returns the cached results for key, or runs compute,
// stores its (immutable) results, and returns them. Implementations
// must de-duplicate concurrent misses on the same key (singleflight)
// so that identical in-flight queries share one table scan. compute
// reports whether its results may be stored: plan execution returns
// cacheable=false when it detects the table mutated mid-scan, so
// results observed under a newer table version are never published
// under the older version's key. Results handed out must never be
// mutated by callers; plan execution only reads them.
type ExecCache interface {
	GetOrCompute(ctx context.Context, key string, compute func() (results []*engine.Result, cacheable bool, err error)) ([]*engine.Result, error)
}

// execCacheKey digests one exec-unit engine call into a stable
// content-addressed key. Everything that can change the result bytes
// is included. Scan parallelism deliberately is NOT: the engine folds
// float partials on a fixed per-table chunk grid and combines them with
// exact summation, so SUM/AVG bytes are identical across parallelism
// settings and shard counts — one cached entry serves them all. The
// backend layout signature IS included: in-process layouts are provably
// result-identical, but a remote fleet could run a heterogeneous build,
// so entries are never shared across execution layouts.
//
// The plan portion (predicate, sampling, grouping sets, bin widths,
// aggregates) is engine.PlanSignature — the same digest the engine's
// chunk-partial store keys on — so the two caches can never drift on
// what "same plan" means. This layer adds what the engine's signature
// deliberately omits: table fingerprint, execution layout, the phased
// row range, and the exploration operator that issued the query.
//
// The operator is part of the key even though an engine query's result
// does not depend on it: entries stay partitioned per operator family,
// matching RunSignature's semantics, at the cost of not sharing the
// operator-independent comparison scan across operators. The engine's
// chunk-partial store deliberately does NOT key on the operator: it
// sits below the operator seam and is content-addressed purely by plan
// shape (engine.PlanSignature), so sealed-chunk partials remain
// reusable across operators and table versions alike.
func execCacheKey(fingerprint, layout, operator string, q *engine.Query, gsets []engine.GroupingSet) string {
	var b strings.Builder
	b.Grow(256)
	b.WriteString(fingerprint)
	b.WriteByte('\n')
	b.WriteString(operator)
	b.WriteByte('\n')
	b.WriteString(layout)
	if q.Shards > 0 {
		// A per-request shard-count override narrows which workers of a
		// remote fleet execute; treat it as part of the layout.
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(q.Shards))
	}
	b.WriteByte('\n')
	// The phased row range selects which rows feed the aggregation, so
	// it is part of the content address.
	b.WriteString(strconv.Itoa(q.RowLo))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(q.RowHi))
	b.WriteByte('\n')
	if gsets == nil {
		gsets = []engine.GroupingSet{{By: q.GroupBy, Aggs: q.Aggs, BinWidths: q.BinWidths}}
	}
	b.WriteString(engine.PlanSignature(q, gsets))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// RunSignature digests a whole Recommend request — table version,
// analyst query, and the full effective option set — into the
// request-coalescing key the service layer's scheduler uses: two
// requests with the same signature are guaranteed to produce
// byte-identical Results (modulo the wall-clock and executor-counter
// stats), so concurrent duplicates can safely share one pipeline run.
// It lives next to execCacheKey deliberately: execCacheKey
// de-duplicates work at the exec-unit level within a run, RunSignature
// de-duplicates entire runs. Options are normalized first so requests
// that spell the defaults differently (metric "" vs "emd", Parallelism
// 0 vs GOMAXPROCS) still coalesce; options that fail validation keep
// their raw spelling and fail identically inside the shared run.
func RunSignature(fingerprint string, q Query, opts Options) string {
	if n, err := opts.normalize(); err == nil {
		opts = n
	}
	var b strings.Builder
	b.Grow(512)
	b.WriteString("run\n")
	b.WriteString(fingerprint)
	b.WriteByte('\n')
	b.WriteString(q.Table)
	b.WriteByte('\n')
	writePredicate(&b, q.Predicate)
	b.WriteByte('\n')
	// Options is a flat struct of scalars and ordered slices, so the
	// %+v rendering is deterministic and covers every knob. This only
	// stays true while Options contains value kinds exclusively — a
	// pointer or func field would render as a per-request address and
	// silently disable coalescing. TestRunSignatureOptionsAreValueOnly
	// guards that property against future fields.
	fmt.Fprintf(&b, "%+v", opts)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// traceSeq distinguishes repeat runs of the same signature; trace IDs
// must be unique per run where signatures deliberately are not.
var traceSeq atomic.Int64

// RunTraceID derives the observability trace ID for one pipeline run
// from its coalescing signature. It lives next to RunSignature
// deliberately: the signature prefix makes re-runs of the same request
// visually groupable in a trace ring, while the sequence suffix keeps
// every run distinct. Requests coalesced onto a shared run share that
// run's trace ID.
func RunTraceID(sig string) string {
	sum := sha256.Sum256([]byte(sig))
	return fmt.Sprintf("t-%s-%d", hex.EncodeToString(sum[:6]), traceSeq.Add(1))
}

func writePredicate(b *strings.Builder, p engine.Predicate) {
	if p == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(p.String())
}
