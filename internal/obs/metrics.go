// Package obs is the observability seam for the SeeDB server: a
// dependency-free metrics registry exported in the Prometheus text
// exposition format, and per-run request tracing with a ring buffer
// of recently completed traces.
//
// Everything here is observation-only by contract: instrumented code
// paths must produce byte-identical results whether a registry/tracer
// is installed or not (the same invariant the core ProgressListener
// seam pins). To make call sites unconditional, every method on every
// type in this package is safe to call on a nil receiver and simply
// does nothing.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram upper bounds in seconds,
// matching the classic Prometheus client defaults.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// FsyncBuckets suit the sub-millisecond-to-tens-of-ms range an fsync
// lands in on local disks.
var FsyncBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// collector is one metric family: it renders its samples (without the
// HELP/TYPE header) into w.
type collector interface {
	samples(w io.Writer, name string)
	typ() string
}

type familyEntry struct {
	name string
	help string
	col  collector
}

// Registry holds named metric families and renders them as Prometheus
// text exposition format 0.0.4. A nil *Registry is a valid no-op
// registry: constructors return nil metrics, which are themselves
// no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*familyEntry
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*familyEntry)}
}

// register installs fam under name. Value-backed metrics are
// get-or-create (re-registering returns the existing instance so two
// components can't split a family); func-backed metrics replace the
// prior registration (a swapped backend re-registers its collectors).
func (r *Registry) register(name, help, typ string, col collector, replace bool) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.families[name]; ok && !replace {
		if prev.col.typ() == typ {
			return prev.col
		}
	}
	r.families[name] = &familyEntry{name: name, help: help, col: col}
	return col
}

// Counter returns the registered counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	return r.register(name, help, "counter", c, false).(*Counter)
}

// CounterVec returns a counter family keyed by label values.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{labels: labels, kids: make(map[string]*Counter)}
	return r.register(name, help, "counter", v, false).(*CounterVec)
}

// CounterFunc registers a counter whose value is read at scrape time.
// Use it to expose an existing component's atomic counter without
// double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", funcMetric{fn: fn, kind: "counter"}, true)
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", funcMetric{fn: fn, kind: "gauge"}, true)
}

// Histogram returns the registered fixed-bucket histogram, creating
// it if needed. buckets must be sorted ascending; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	return r.register(name, help, "histogram", h, false).(*Histogram)
}

// HistogramVec returns a histogram family keyed by label values.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	v := &HistogramVec{labels: labels, buckets: normBuckets(buckets), kids: make(map[string]*Histogram)}
	return r.register(name, help, "histogram", v, false).(*HistogramVec)
}

// WritePrometheus renders every family, sorted by name, in text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*familyEntry, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.col.typ())
		f.col.samples(w, f.name)
	}
}

// Counter is a monotonically increasing float64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v; negative deltas are ignored to
// preserve monotonicity.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) typ() string { return "counter" }

func (c *Counter) samples(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(c.Value()))
}

// CounterVec is a counter family: one child per label-value tuple.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// With returns the child counter for the given label values (one per
// declared label name, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	k := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[k]
	if !ok {
		c = &Counter{}
		v.kids[k] = c
	}
	return c
}

// Total sums every child — handy for "requests served" style totals
// surfaced outside the exposition endpoint.
func (v *CounterVec) Total() float64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var t float64
	for _, c := range v.kids {
		t += c.Value()
	}
	return t
}

func (v *CounterVec) typ() string { return "counter" }

func (v *CounterVec) samples(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		labels string
		val    float64
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{renderLabels(v.labels, strings.Split(k, "\x1f"), "", 0), v.kids[k].Value()})
	}
	v.mu.Unlock()
	for _, row := range rows {
		fmt.Fprintf(w, "%s%s %s\n", name, row.labels, formatFloat(row.val))
	}
}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	sum    Counter
}

func normBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	return out
}

func newHistogram(buckets []float64) *Histogram {
	b := normBuckets(buckets)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(math.Max(v, 0))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) typ() string { return "histogram" }

func (h *Histogram) samples(w io.Writer, name string) {
	h.write(w, name, nil, nil)
}

// write renders the bucket/sum/count series with optional extra
// labels. The +Inf bucket and _count are the same computed total, so
// the exposition is internally consistent by construction.
func (h *Histogram) write(w io.Writer, name string, labelNames, labelValues []string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labelNames, labelValues, "le", bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labelNames, labelValues, "le", math.Inf(1)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labelNames, labelValues, "", 0), formatFloat(h.sum.Value()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labelNames, labelValues, "", 0), cum)
}

// HistogramVec is a histogram family: one child per label-value tuple.
type HistogramVec struct {
	labels  []string
	buckets []float64
	mu      sync.Mutex
	kids    map[string]*Histogram
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	k := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[k]
	if !ok {
		h = newHistogram(v.buckets)
		v.kids[k] = h
	}
	return h
}

func (v *HistogramVec) typ() string { return "histogram" }

func (v *HistogramVec) samples(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.kids[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		kids[i].write(w, name, v.labels, strings.Split(k, "\x1f"))
	}
}

// funcMetric reads its value at scrape time.
type funcMetric struct {
	fn   func() float64
	kind string
}

func (f funcMetric) typ() string { return f.kind }

func (f funcMetric) samples(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(f.fn()))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// renderLabels renders {k="v",...}; leName, when non-empty, appends
// the histogram le label last (Prometheus convention). Returns ""
// when there is nothing to render.
func renderLabels(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(val))
		b.WriteString(`"`)
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		leVal := "+Inf"
		if !math.IsInf(le, 1) {
			leVal = formatFloat(le)
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(leVal)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
