package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpansAndRing(t *testing.T) {
	tr := NewTracer(2)
	a := tr.New("t-a")
	sp := a.StartSpan("scheduler-queue").SetAttr("sig", "abc")
	time.Sleep(2 * time.Millisecond)
	sp.Finish()
	a.StartSpan("phase") // left unfinished: dump clamps it to trace end
	tr.Finish(a)

	d, ok := tr.Get("t-a")
	if !ok {
		t.Fatalf("finished trace not retained")
	}
	if d.ID != "t-a" || len(d.Spans) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Spans[0].Name != "scheduler-queue" || d.Spans[0].Attrs["sig"] != "abc" {
		t.Fatalf("span 0 = %+v", d.Spans[0])
	}
	if d.Spans[0].DurMillis <= 0 || d.Spans[0].DurMillis > d.WallMillis {
		t.Fatalf("span duration %v outside wall %v", d.Spans[0].DurMillis, d.WallMillis)
	}
	if d.Spans[1].DurMillis < 0 {
		t.Fatalf("unfinished span got negative duration: %+v", d.Spans[1])
	}

	// Ring evicts oldest past capacity.
	tr.Finish(tr.New("t-b"))
	tr.Finish(tr.New("t-c"))
	if _, ok := tr.Get("t-a"); ok {
		t.Fatalf("oldest trace not evicted at capacity 2")
	}
	if tr.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", tr.Len())
	}
	recent := tr.Recent(0)
	if len(recent) != 2 || recent[0].ID != "t-c" || recent[1].ID != "t-b" {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(1)
	a := tr.New("t-cap")
	for i := 0; i < maxSpans+10; i++ {
		s := a.StartSpan("s")
		s.Finish()
	}
	tr.Finish(a)
	d, _ := tr.Get("t-cap")
	if len(d.Spans) != maxSpans {
		t.Fatalf("span count = %d, want cap %d", len(d.Spans), maxSpans)
	}
}

func TestNilTracingIsNoOp(t *testing.T) {
	var tr *Tracer
	tt := tr.New("x")
	if tt != nil {
		t.Fatalf("nil tracer produced a trace")
	}
	sp := tt.StartSpan("s").SetAttr("k", "v")
	sp.Finish()
	tr.Finish(tt)
	if _, ok := tr.Get("x"); ok {
		t.Fatalf("nil tracer retained a trace")
	}
	if tt.ID() != "" {
		t.Fatalf("nil trace has an ID")
	}
}

func TestContextHelpers(t *testing.T) {
	tr := NewTracer(1)
	a := tr.New("t-ctx")
	ctx := ContextWithTrace(context.Background(), a)
	if TraceFrom(ctx) != a {
		t.Fatalf("trace not recoverable from context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatalf("empty context produced a trace")
	}
	// Attaching a nil trace leaves the context unchanged.
	if ContextWithTrace(context.Background(), nil) != context.Background() {
		t.Fatalf("nil trace attached to context")
	}

	ctx2, cap := WithIDCapture(context.Background())
	if IDCaptureFrom(ctx2) != cap {
		t.Fatalf("capture cell not recoverable")
	}
	cap.Set("t-1")
	if cap.Get() != "t-1" {
		t.Fatalf("capture get = %q", cap.Get())
	}
	var nilCap *IDCapture
	nilCap.Set("x")
	if nilCap.Get() != "" {
		t.Fatalf("nil capture stored a value")
	}
	if IDCaptureFrom(context.Background()) != nil {
		t.Fatalf("empty context produced a capture cell")
	}
}
