package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("seedb_test_total", "a test counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	if again := r.Counter("seedb_test_total", "redefined"); again != c {
		t.Fatalf("re-registering a counter must return the same instance")
	}

	v := r.CounterVec("seedb_test_labeled_total", "labeled", "route", "code")
	v.With("/api/recommend", "200").Add(2)
	v.With("/api/recommend", "503").Inc()
	if got := v.Total(); got != 3 {
		t.Fatalf("vec total = %v, want 3", got)
	}
	if v.With("only-one-value") != nil {
		t.Fatalf("arity-mismatched With must return a nil no-op counter")
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP seedb_test_total a test counter",
		"# TYPE seedb_test_total counter",
		"seedb_test_total 3.5",
		`seedb_test_labeled_total{route="/api/recommend",code="200"} 2`,
		`seedb_test_labeled_total{route="/api/recommend",code="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("seedb_esc_total", "help with \\ and\nnewline", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP seedb_esc_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `seedb_esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("seedb_test_seconds", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 2, 0.7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`seedb_test_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1
		`seedb_test_seconds_bucket{le="0.5"} 3`,
		`seedb_test_seconds_bucket{le="1"} 4`,
		`seedb_test_seconds_bucket{le="+Inf"} 5`,
		`seedb_test_seconds_sum 3.15`,
		`seedb_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	hv := r.HistogramVec("seedb_test_rpc_seconds", "per shard", []float64{0.1}, "shard")
	hv.With("1").Observe(0.05)
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `seedb_test_rpc_seconds_bucket{shard="1",le="0.1"} 1`) {
		t.Errorf("histogram vec labels wrong:\n%s", b.String())
	}
}

func TestFuncCollectorsAndReplacement(t *testing.T) {
	r := NewRegistry()
	val := 1.0
	r.GaugeFunc("seedb_depth", "queue depth", func() float64 { return val })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "# TYPE seedb_depth gauge") || !strings.Contains(b.String(), "seedb_depth 1") {
		t.Fatalf("gauge func missing:\n%s", b.String())
	}
	// Func collectors are replaced on re-registration (swapped backend).
	r.GaugeFunc("seedb_depth", "queue depth", func() float64 { return 7 })
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "seedb_depth 7") {
		t.Fatalf("gauge func not replaced:\n%s", b.String())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "y")
	c.Inc()
	h := r.Histogram("z", "w", nil)
	h.Observe(1)
	r.CounterFunc("a", "b", func() float64 { return 1 })
	r.GaugeFunc("a", "b", func() float64 { return 1 })
	r.CounterVec("v", "v", "l").With("x").Inc()
	r.HistogramVec("hv", "hv", nil, "l").With("x").Observe(1)
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered output: %q", b.String())
	}
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics accumulated values")
	}
}

func TestFormatFloatInf(t *testing.T) {
	if got := renderLabels(nil, nil, "le", math.Inf(1)); got != `{le="+Inf"}` {
		t.Fatalf("inf le label = %q", got)
	}
}
