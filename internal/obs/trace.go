package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a run's trace ID: set on
// coordinator responses and propagated coordinator→worker on
// /api/shard/exec so a sharded run's worker-side spans share the
// coordinator's trace ID.
const TraceHeader = "X-Seedb-Trace"

// maxSpans bounds a single trace's span count so a pathological run
// (thousands of cache lookups) cannot grow memory without bound.
const maxSpans = 512

// Span is one timed segment of a trace. Create via Trace.StartSpan;
// a nil *Span is a no-op so instrumentation never branches.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	end   time.Time
	attrs []spanAttr
}

type spanAttr struct{ k, v string }

// SetAttr attaches a key/value annotation and returns the span for
// chaining.
func (s *Span) SetAttr(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{k, v})
	s.tr.mu.Unlock()
	return s
}

// Finish stamps the span's end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.end = time.Now()
	s.tr.mu.Unlock()
}

// Trace collects the spans of one pipeline run. A nil *Trace is a
// no-op (StartSpan returns a nil no-op span).
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	spans []*Span
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan begins a named span. Spans past the per-trace cap are
// dropped (a nil span is returned) rather than growing without bound.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		return nil
	}
	t.spans = append(t.spans, sp)
	return sp
}

// SpanDump is the immutable JSON form of a completed span. Times are
// millisecond offsets from the trace start so a dump is readable
// without timestamp math.
type SpanDump struct {
	Name        string            `json:"name"`
	StartMillis float64           `json:"startMillis"`
	DurMillis   float64           `json:"durMillis"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// TraceDump is the immutable JSON form of a completed trace.
type TraceDump struct {
	ID         string     `json:"id"`
	Start      time.Time  `json:"start"`
	WallMillis float64    `json:"wallMillis"`
	Spans      []SpanDump `json:"spans"`
}

func (t *Trace) dump(end time.Time) TraceDump {
	d := TraceDump{
		ID:         t.id,
		Start:      t.start,
		WallMillis: millis(end.Sub(t.start)),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		spEnd := sp.end
		if spEnd.IsZero() {
			spEnd = end // unfinished span: clamp to the trace end
		}
		sd := SpanDump{
			Name:        sp.name,
			StartMillis: millis(sp.start.Sub(t.start)),
			DurMillis:   millis(spEnd.Sub(sp.start)),
		}
		if len(sp.attrs) > 0 {
			sd.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				sd.Attrs[a.k] = a.v
			}
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Tracer owns in-flight traces and a fixed-size ring of completed
// trace dumps, addressable by ID. A nil *Tracer is a no-op.
type Tracer struct {
	capN int
	mu   sync.Mutex
	ring []string // completed IDs, oldest first
	byID map[string]TraceDump
}

// NewTracer builds a tracer retaining the last capacity completed
// traces (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capN: capacity, byID: make(map[string]TraceDump)}
}

// New begins a trace with the given ID.
func (tr *Tracer) New(id string) *Trace {
	if tr == nil || id == "" {
		return nil
	}
	return &Trace{id: id, start: time.Now()}
}

// Finish completes t, snapshotting it into the ring buffer (evicting
// the oldest dump past capacity).
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	d := t.dump(time.Now())
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, dup := tr.byID[d.ID]; dup {
		// Same ID finished twice (coordinator + local worker sharing a
		// ring): keep the newer dump, ring position unchanged.
		tr.byID[d.ID] = d
		return
	}
	tr.ring = append(tr.ring, d.ID)
	tr.byID[d.ID] = d
	for len(tr.ring) > tr.capN {
		delete(tr.byID, tr.ring[0])
		tr.ring = tr.ring[1:]
	}
}

// Get returns the completed trace with the given ID.
func (tr *Tracer) Get(id string) (TraceDump, bool) {
	if tr == nil {
		return TraceDump{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d, ok := tr.byID[id]
	return d, ok
}

// Recent returns up to n completed traces, newest first.
func (tr *Tracer) Recent(n int) []TraceDump {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || n > len(tr.ring) {
		n = len(tr.ring)
	}
	out := make([]TraceDump, 0, n)
	for i := len(tr.ring) - 1; i >= len(tr.ring)-n; i-- {
		out = append(out, tr.byID[tr.ring[i]])
	}
	return out
}

// Len reports how many completed traces are retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.ring)
}

type traceCtxKey struct{}
type captureCtxKey struct{}

// ContextWithTrace attaches t to ctx so downstream layers (cache,
// cluster, phased executor) can record spans against the run's trace.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// IDCapture is a mutable cell the scheduler fills with the run's
// trace ID, letting the HTTP layer learn the ID of the (possibly
// coalesced) run its request attached to without changing any public
// call signature.
type IDCapture struct {
	v atomic.Value // string
}

// Set stores the trace ID (first writer wins; a coalesced attach and
// the run creator race benignly to the same value).
func (c *IDCapture) Set(id string) {
	if c == nil || id == "" {
		return
	}
	c.v.Store(id)
}

// Get returns the captured ID, or "".
func (c *IDCapture) Get() string {
	if c == nil {
		return ""
	}
	s, _ := c.v.Load().(string)
	return s
}

// WithIDCapture attaches a fresh capture cell to ctx and returns it.
func WithIDCapture(ctx context.Context) (context.Context, *IDCapture) {
	c := &IDCapture{}
	return context.WithValue(ctx, captureCtxKey{}, c), c
}

// IDCaptureFrom returns the capture cell attached to ctx, or nil.
func IDCaptureFrom(ctx context.Context) *IDCapture {
	c, _ := ctx.Value(captureCtxKey{}).(*IDCapture)
	return c
}

// Hub bundles the two observability facilities a server carries.
type Hub struct {
	Metrics *Registry
	Traces  *Tracer
}

// NewHub builds a hub with an empty registry and a 256-trace ring.
func NewHub() *Hub {
	return &Hub{Metrics: NewRegistry(), Traces: NewTracer(256)}
}
