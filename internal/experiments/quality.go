package experiments

import (
	"context"
	"fmt"

	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/distance"
	"seedb/internal/engine"
)

// ---------------------------------------------------------------------
// E10 — pruning strategies

func runE10(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E10",
		Title:      "View-space pruning: variance, correlation, access frequency",
		PaperClaim: "SEEDB aggressively prunes view queries unlikely to have high utility using metadata (§3.3)",
		Headers:    []string{"configuration", "candidate views", "executed views", "ms", "top-3 Jaccard vs no pruning"},
	}
	rows := cfg.rows(200_000) / 2
	if cfg.Quick {
		rows = cfg.rows(10_000)
	}
	// A schema with pruning bait: constant dims, near-constant dims,
	// correlated copies.
	synth := datagen.SyntheticConfig{
		Name: "e10", Rows: rows, Seed: cfg.Seed, TargetFraction: 0.1,
		Dims: []datagen.DimSpec{
			{Name: "d0", Card: 10},
			{Name: "d1", Card: 10},
			{Name: "d2", Card: 12},
			{Name: "d1copy", Card: 10, CorrelateWith: "d1"},
			{Name: "d2copy", Card: 12, CorrelateWith: "d2"},
			{Name: "const1", Constant: true, Card: 1},
			{Name: "const2", Constant: true, Card: 1},
			{Name: "skewed", Card: 50, Zipf: 3.5},
		},
		Measures: []datagen.MeasureSpec{
			{Name: "m0", Mean: 100, Stddev: 25},
			{Name: "m1", Mean: 50, Stddev: 10},
		},
		Deviations: []datagen.Deviation{{Dim: "d1", Measure: "m0", Strength: 2}},
	}
	e, q, _, err := synEngine(synth)
	if err != nil {
		return nil, err
	}
	base := stdOpts()
	base.CombineTargetComparison = true
	base.CombineAggregates = true
	base.CombineGroupBys = core.CombineGroupingSets
	base.K = 3

	noPrune, dNo, err := recommendTimed(cfg, e, q, base)
	if err != nil {
		return nil, err
	}
	ref := topViews(noPrune, 3)
	r.addRow("no pruning",
		fmt.Sprintf("%d", noPrune.Stats.CandidateViews),
		fmt.Sprintf("%d", noPrune.Stats.ExecutedViews),
		ms(dNo), "1.00")

	type variant struct {
		name string
		mut  func(*core.Options)
	}
	variants := []variant{
		{"variance pruning", func(o *core.Options) { o.PruneLowVariance = true; o.VarianceMinEntropy = 0.02 }},
		{"correlation pruning", func(o *core.Options) { o.PruneCorrelated = true; o.CorrelationThreshold = 0.95 }},
		{"variance + correlation", func(o *core.Options) {
			o.PruneLowVariance = true
			o.VarianceMinEntropy = 0.02
			o.PruneCorrelated = true
		}},
	}
	for _, v := range variants {
		opts := base
		v.mut(&opts)
		res, d, err := recommendTimed(cfg, e, q, opts)
		if err != nil {
			return nil, err
		}
		r.addRow(v.name,
			fmt.Sprintf("%d", res.Stats.CandidateViews),
			fmt.Sprintf("%d", res.Stats.ExecutedViews),
			ms(d),
			fmt.Sprintf("%.2f", jaccard(ref, topViews(res, 3))))
	}

	// Access-frequency pruning needs history: simulate an analyst who
	// keeps querying d1/m0.
	ex := e.Executor()
	for i := 0; i < 200; i++ {
		ex.Catalog().RecordAccess("e10", "d1", "d2", "m0", "m1")
	}
	opts := base
	opts.PruneRarelyAccessed = true
	opts.AccessKeepFraction = 0.3
	opts.AccessMinHistory = 100
	res, d, err := recommendTimed(cfg, e, q, opts)
	if err != nil {
		return nil, err
	}
	r.addRow("access-frequency pruning",
		fmt.Sprintf("%d", res.Stats.CandidateViews),
		fmt.Sprintf("%d", res.Stats.ExecutedViews),
		ms(d),
		fmt.Sprintf("%.2f", jaccard(ref, topViews(res, 3))))

	r.notef("pruning eliminates constant/correlated/cold attributes while the top views (driven by the planted deviation) are retained")
	return r, nil
}

// ---------------------------------------------------------------------
// E11 — metric comparison

func runE11(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E11",
		Title:      "Distance metric choice: agreement and cost",
		PaperClaim: "attendees can experiment with different distance metrics and examine how the choice affects view quality (§2)",
		Headers:    []string{"metric", "ms", "top-5 Jaccard vs EMD", "Kendall tau vs EMD", "top view"},
	}
	rows := cfg.rows(200_000) / 4
	if cfg.Quick {
		rows = cfg.rows(10_000)
	}
	cat := engine.NewCatalog()
	if err := cat.Register(datagen.Superstore("orders", rows, cfg.Seed)); err != nil {
		return nil, err
	}
	e := core.New(engine.NewExecutor(cat))
	q := core.Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}

	rankings := map[string][]string{}
	var emdRanking []string
	for _, metric := range distance.Names() {
		opts := core.DefaultOptions()
		opts.Metric = metric
		opts.K = 5
		var res *core.Result
		d, err := medianTime(reps(cfg), func() error {
			var err error
			res, err = e.Recommend(context.Background(), q, opts)
			return err
		})
		if err != nil {
			return nil, err
		}
		var ranking []string
		for _, s := range res.AllScores {
			ranking = append(ranking, s.View.Key())
		}
		rankings[metric] = ranking
		if metric == "emd" {
			emdRanking = ranking
		}
		top := res.Recommendations[0].Data.View.String()
		r.addRow(metric, ms(d), "", "", top)
	}
	// Fill agreement columns now that EMD's ranking is known.
	for i, metric := range distance.Names() {
		rk := rankings[metric]
		top5 := rk
		if len(top5) > 5 {
			top5 = top5[:5]
		}
		emdTop5 := emdRanking
		if len(emdTop5) > 5 {
			emdTop5 = emdTop5[:5]
		}
		r.Rows[i][2] = fmt.Sprintf("%.2f", jaccard(emdTop5, top5))
		r.Rows[i][3] = fmt.Sprintf("%.2f", kendallTau(emdRanking, rk))
	}
	r.notef("metrics broadly agree on the strongest deviations; KL diverges most on sparse views (zero-mass groups)")
	return r, nil
}

// ---------------------------------------------------------------------
// E12 — phased execution with CI pruning

func runE12(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E12",
		Title:      "Phased execution with Hoeffding confidence-interval pruning (extension)",
		PaperClaim: "trade accuracy of 'interestingness' estimation for reduced latency (§1 challenge (d))",
		Headers:    []string{"phases", "ms", "views pruned early", "top-3 identical to exact"},
	}
	rows := cfg.rows(200_000)
	if cfg.Quick {
		rows = cfg.rows(10_000) * 2
	}
	synth := datagen.DefaultSynthetic("e12", rows, cfg.Seed)
	synth.Deviations = append(synth.Deviations, datagen.Deviation{Dim: "d3", Measure: "m2", Strength: 1.0})
	e, q, _, err := synEngine(synth)
	if err != nil {
		return nil, err
	}
	opts := stdOpts()
	opts.AggFuncs = []engine.AggFunc{engine.AggSum, engine.AggCount}
	opts.CombineTargetComparison = true
	opts.CombineAggregates = true
	opts.CombineGroupBys = core.CombineGroupingSets
	opts.K = 3

	exact, dExact, err := recommendTimed(cfg, e, q, opts)
	if err != nil {
		return nil, err
	}
	exactTop := topViews(exact, 3)
	r.addRow("1 (exact)", ms(dExact), "0", "true")

	phases := []int{8, 16, 32}
	if cfg.Quick {
		phases = []int{4}
	}
	for _, p := range phases {
		po := opts
		po.Phases = p
		po.PhaseConfidence = 0.95
		res, d, err := recommendTimed(cfg, e, q, po)
		if err != nil {
			return nil, err
		}
		r.addRow(
			fmt.Sprintf("%d", p),
			ms(d),
			fmt.Sprintf("%d", res.Stats.PrunedViews[core.PrunedPhased]),
			fmt.Sprintf("%v", jaccard(exactTop, topViews(res, 3)) == 1))
	}
	r.notef("more phases give earlier pruning opportunities; surviving utilities are exact because phases partition the data")
	return r, nil
}

// ---------------------------------------------------------------------
// E13 — Scenario 2 knobs

func runE13(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E13",
		Title:      "Demo Scenario 2 knobs: data size, attribute count, distribution skew",
		PaperClaim: "attendees adjust knobs such as data size, number of attributes, and data distribution (§4)",
		Headers:    []string{"knob", "value", "candidate views", "ms"},
	}
	base := cfg.rows(200_000)
	ctx := context.Background()
	opt := stdOpts()
	opt.CombineTargetComparison = true
	opt.CombineAggregates = true
	opt.CombineGroupBys = core.CombineGroupingSets
	opt.K = 5

	sizes := []int{base / 8, base / 4, base / 2, base}
	if cfg.Quick {
		sizes = []int{base / 2, base}
	}
	for _, rows := range sizes {
		e, q, _, err := synEngine(datagen.DefaultSynthetic("e13s", rows, cfg.Seed))
		if err != nil {
			return nil, err
		}
		var res *core.Result
		d, err := medianTime(reps(cfg), func() error {
			var err error
			res, err = e.Recommend(ctx, q, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		r.addRow("rows", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", res.Stats.CandidateViews), ms(d))
	}

	dims := []int{5, 10, 20}
	if cfg.Quick {
		dims = []int{5, 10}
	}
	for _, nd := range dims {
		synth := datagen.SyntheticConfig{Name: "e13a", Rows: base / 4, Seed: cfg.Seed, TargetFraction: 0.1}
		for i := 0; i < nd; i++ {
			synth.Dims = append(synth.Dims, datagen.DimSpec{Name: fmt.Sprintf("d%d", i), Card: 10})
		}
		for i := 0; i < 5; i++ {
			synth.Measures = append(synth.Measures, datagen.MeasureSpec{Name: fmt.Sprintf("m%d", i), Mean: 100, Stddev: 20})
		}
		e, q, _, err := synEngine(synth)
		if err != nil {
			return nil, err
		}
		var res *core.Result
		d, err := medianTime(reps(cfg), func() error {
			var err error
			res, err = e.Recommend(ctx, q, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		r.addRow("dimensions", fmt.Sprintf("%d", nd), fmt.Sprintf("%d", res.Stats.CandidateViews), ms(d))
	}

	skews := []float64{0, 1.5, 3}
	if cfg.Quick {
		skews = []float64{0, 3}
	}
	for _, z := range skews {
		synth := datagen.DefaultSynthetic("e13z", base/4, cfg.Seed)
		for i := range synth.Dims {
			if synth.Dims[i].Name != synth.TargetDim {
				synth.Dims[i].Zipf = z
			}
		}
		e, q, _, err := synEngine(synth)
		if err != nil {
			return nil, err
		}
		var res *core.Result
		d, err := medianTime(reps(cfg), func() error {
			var err error
			res, err = e.Recommend(ctx, q, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		r.addRow("zipf skew", fmt.Sprintf("%.1f", z), fmt.Sprintf("%d", res.Stats.CandidateViews), ms(d))
	}
	r.notef("latency scales ~linearly with rows and with dimension count (views ∝ dims·measures); skew mildly reduces group counts")
	return r, nil
}

// ---------------------------------------------------------------------
// E14 — ground-truth recovery

func runE14(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E14",
		Title:      "Recovering planted trends (demo Scenario 1: 'confirm that SeeDB reproduces known information')",
		PaperClaim: "SeeDB surfaces interesting trends for a query with high quality (§4)",
		Headers:    []string{"planted strength", "precision@planted", "planted mean rank", "top view"},
	}
	rows := cfg.rows(200_000) / 4
	if cfg.Quick {
		rows = cfg.rows(10_000)
	}
	strengths := []float64{0.25, 0.5, 1.0, 2.0}
	if cfg.Quick {
		strengths = []float64{0.5, 2.0}
	}
	for _, strength := range strengths {
		synth := datagen.DefaultSynthetic("e14", rows, cfg.Seed)
		synth.Deviations = []datagen.Deviation{
			{Dim: "d1", Measure: "m0", Strength: strength},
			{Dim: "d2", Measure: "m1", Strength: strength},
		}
		e, q, gt, err := synEngine(synth)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.K = len(gt.PlantedViews)
		opts.AggFuncs = []engine.AggFunc{engine.AggSum}
		// Precision is measured against dimension-side ground truth;
		// binned views of the planted measures would double-count it.
		opts.BinContinuousDims = false
		res, err := e.Recommend(context.Background(), q, opts)
		if err != nil {
			return nil, err
		}
		planted := map[string]bool{}
		for _, d := range gt.PlantedViews {
			planted[d.Dim+"/"+d.Measure] = true
		}
		hits := 0
		for _, rec := range res.Recommendations {
			if planted[rec.Data.View.Dimension+"/"+rec.Data.View.Measure] {
				hits++
			}
		}
		// Mean rank of planted views in the full ordering.
		rankSum, found := 0, 0
		for rank, s := range res.AllScores {
			if planted[s.View.Dimension+"/"+s.View.Measure] {
				rankSum += rank + 1
				found++
			}
		}
		meanRank := "-"
		if found > 0 {
			meanRank = fmt.Sprintf("%.1f", float64(rankSum)/float64(found))
		}
		r.addRow(
			fmt.Sprintf("%.2f", strength),
			fmt.Sprintf("%.2f", float64(hits)/float64(len(gt.PlantedViews))),
			meanRank,
			res.Recommendations[0].Data.View.String())
	}
	r.notef("strong planted deviations are recovered with precision 1.0; weak ones sink toward the noise floor, as expected")
	return r, nil
}
