package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"seedb/internal/datagen"
	"seedb/internal/engine"
	"seedb/internal/wal"
)

// WALBench is the committed evidence for the durability layer
// (BENCH_wal.json): what write-ahead logging costs on the ingest path
// under each sync policy, and what recovery costs when the log must be
// replayed versus when a snapshot checkpoint covers it. The three
// modes bracket the design space — no durability, WAL with deferred
// fsync (bounded loss window), and fsync-per-batch (every ack
// durable) — so the slowdown column is the measured price of each
// guarantee.
type WALBench struct {
	Rows       int   `json:"rows"`
	BatchRows  int   `json:"batchRows"`
	Batches    int   `json:"batches"`
	Seed       int64 `json:"seed"`
	Iterations int   `json:"iterations"`
	// Modes holds one ingest-throughput measurement per sync policy.
	Modes []WALModePoint `json:"modes"`
	// Replay measures cold-boot recovery of the same ingest volume.
	Replay WALReplayPoint `json:"replay"`
}

// WALModePoint measures ingest throughput under one durability mode.
type WALModePoint struct {
	// Mode is "off" (no WAL), "buffered" (WAL, fsync deferred), or
	// "fsync-per-batch" (WAL, fsync before every ack).
	Mode      string `json:"mode"`
	SyncEvery int    `json:"syncEvery,omitempty"`
	// IngestMillis is the median wall time to append all batches;
	// RowsPerSec the derived throughput; SlowdownVsOff the ratio
	// against the no-durability mode.
	IngestMillis  float64 `json:"ingestMillis"`
	RowsPerSec    float64 `json:"rowsPerSec"`
	SlowdownVsOff float64 `json:"slowdownVsOff"`
	// WALBytes / Syncs / FsyncMillis come from the store's counters
	// after one representative run (zero for mode "off").
	WALBytes    int64   `json:"walBytes,omitempty"`
	Syncs       int64   `json:"syncs,omitempty"`
	FsyncMillis float64 `json:"fsyncMillis,omitempty"`
}

// WALReplayPoint measures boot-time recovery of a crashed store.
type WALReplayPoint struct {
	// WALBytes is the log size recovery had to scan when nothing was
	// checkpointed; ReplayedBatches/ReplayedRows what it applied.
	WALBytes        int64 `json:"walBytes"`
	ReplayedBatches int   `json:"replayedBatches"`
	ReplayedRows    int   `json:"replayedRows"`
	// WALReplayMillis is the median cold-boot time with the whole
	// ingest volume in the WAL (worst case: crash before any
	// checkpoint); WALRowsPerSec the derived replay throughput.
	WALReplayMillis float64 `json:"walReplayMillis"`
	WALRowsPerSec   float64 `json:"walRowsPerSec"`
	// SnapshotRecoveryMillis is the median cold-boot time after a
	// checkpoint compacted the same volume into snapshots (best case:
	// crash right after a checkpoint) — the payoff of compaction.
	SnapshotRecoveryMillis float64 `json:"snapshotRecoveryMillis"`
}

// JSON renders the bench as indented JSON.
func (b *WALBench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// walBenchBase registers an empty orders table to ingest into.
func walBenchBase(seed int64) (*engine.Catalog, *engine.Table, error) {
	cat := engine.NewCatalog()
	t := datagen.Superstore("orders", 0, seed)
	if err := cat.Register(t); err != nil {
		return nil, nil, err
	}
	return cat, t, nil
}

// RunWALBench measures ingest throughput under each durability mode
// and recovery time for the resulting log, at rows total rows split
// into batchRows-sized appends.
func RunWALBench(rows, batchRows int, seed int64, iterations int) (*WALBench, error) {
	if iterations < 3 {
		iterations = 3
	}
	if batchRows <= 0 {
		batchRows = 2000
	}
	batches := rows / batchRows
	if batches < 1 {
		batches = 1
	}
	b := &WALBench{Rows: batches * batchRows, BatchRows: batchRows, Batches: batches, Seed: seed, Iterations: iterations}

	// Pre-build every batch once: the generator's cost must not be
	// billed to the ingest path under test.
	prebuilt := make([][][]engine.Value, batches)
	for i := range prebuilt {
		prebuilt[i] = appendBatch(batchRows, seed+int64(i)+1)
	}

	modes := []struct {
		name      string
		durable   bool
		syncEvery int
	}{
		{"off", false, 0},
		{"buffered", true, batches + 1}, // fsync only at close: pure logging cost
		{"fsync-per-batch", true, 1},
	}
	var offMillis float64
	for _, m := range modes {
		pt := WALModePoint{Mode: m.name}
		if m.durable {
			pt.SyncEvery = m.syncEvery
		}
		times := make([]float64, 0, iterations)
		for it := 0; it < iterations; it++ {
			cat, t, err := walBenchBase(seed)
			if err != nil {
				return nil, err
			}
			var store *wal.Store
			if m.durable {
				dir, err := os.MkdirTemp("", "walbench")
				if err != nil {
					return nil, err
				}
				defer os.RemoveAll(dir)
				// SnapshotEvery past the batch count: measure logging,
				// not checkpointing.
				store, _, err = wal.Open(wal.Options{Dir: dir, SyncEvery: m.syncEvery, SnapshotEvery: batches + 1}, cat)
				if err != nil {
					return nil, err
				}
				cat.SetAppendSink(store)
			}
			t0 := time.Now()
			for _, batch := range prebuilt {
				if _, err := cat.Append(t, batch); err != nil {
					return nil, err
				}
			}
			times = append(times, float64(time.Since(t0).Microseconds())/1000)
			if store != nil {
				if it == 0 {
					st := store.Stats()
					pt.WALBytes = st.WALBytes
					pt.Syncs = st.Syncs
					pt.FsyncMillis = st.FsyncMillis
				}
				if err := store.Close(); err != nil {
					return nil, err
				}
			}
		}
		pt.IngestMillis = median(times)
		if pt.IngestMillis > 0 {
			pt.RowsPerSec = float64(b.Rows) / (pt.IngestMillis / 1000)
		}
		if m.name == "off" {
			offMillis = pt.IngestMillis
		} else if offMillis > 0 {
			pt.SlowdownVsOff = pt.IngestMillis / offMillis
		}
		b.Modes = append(b.Modes, pt)
	}

	// Recovery: ingest the full volume durably, "crash" (abandon the
	// store un-checkpointed), and time a cold boot that must replay
	// every batch from the WAL. Then checkpoint and time the boot that
	// loads the snapshot instead.
	dir, err := os.MkdirTemp("", "walbench-replay")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	{
		cat, t, err := walBenchBase(seed)
		if err != nil {
			return nil, err
		}
		store, _, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 1, SnapshotEvery: batches + 1}, cat)
		if err != nil {
			return nil, err
		}
		cat.SetAppendSink(store)
		for _, batch := range prebuilt {
			if _, err := cat.Append(t, batch); err != nil {
				return nil, err
			}
		}
		// Abandoned: no Close, no checkpoint — the WAL holds it all.
	}
	replayTimes := make([]float64, 0, iterations)
	var lastStore *wal.Store
	for it := 0; it < iterations; it++ {
		if lastStore != nil {
			if err := lastStore.Close(); err != nil {
				return nil, err
			}
		}
		cat, _, err := walBenchBase(seed)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		store, info, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 1, SnapshotEvery: batches + 1}, cat)
		if err != nil {
			return nil, err
		}
		replayTimes = append(replayTimes, float64(time.Since(t0).Microseconds())/1000)
		if it == 0 {
			b.Replay.WALBytes = info.WALBytes
			b.Replay.ReplayedBatches = info.ReplayedBatches
			b.Replay.ReplayedRows = info.ReplayedRows
		}
		lastStore = store
	}
	b.Replay.WALReplayMillis = median(replayTimes)
	if b.Replay.WALReplayMillis > 0 {
		b.Replay.WALRowsPerSec = float64(b.Replay.ReplayedRows) / (b.Replay.WALReplayMillis / 1000)
	}

	// Compact, then measure snapshot-based recovery of the same state.
	if err := lastStore.Checkpoint(); err != nil {
		return nil, err
	}
	if err := lastStore.Close(); err != nil {
		return nil, err
	}
	snapTimes := make([]float64, 0, iterations)
	for it := 0; it < iterations; it++ {
		cat, _, err := walBenchBase(seed)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		store, _, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 1, SnapshotEvery: batches + 1}, cat)
		if err != nil {
			return nil, err
		}
		snapTimes = append(snapTimes, float64(time.Since(t0).Microseconds())/1000)
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	b.Replay.SnapshotRecoveryMillis = median(snapTimes)
	return b, nil
}

// String renders a one-line-per-mode summary for the CLI.
func (b *WALBench) String() string {
	s := fmt.Sprintf("wal bench (rows=%d batch=%d seed=%d iters=%d):\n", b.Rows, b.BatchRows, b.Seed, b.Iterations)
	for _, pt := range b.Modes {
		s += fmt.Sprintf("  mode=%-16s ingest=%.1fms (%.0f rows/s)", pt.Mode, pt.IngestMillis, pt.RowsPerSec)
		if pt.Mode != "off" {
			s += fmt.Sprintf(" slowdown=%.2fx walBytes=%d syncs=%d fsync=%.2fms", pt.SlowdownVsOff, pt.WALBytes, pt.Syncs, pt.FsyncMillis)
		}
		s += "\n"
	}
	s += fmt.Sprintf("  replay: %d batches / %d rows from %d WAL bytes in %.1fms (%.0f rows/s); snapshot recovery %.1fms\n",
		b.Replay.ReplayedBatches, b.Replay.ReplayedRows, b.Replay.WALBytes,
		b.Replay.WALReplayMillis, b.Replay.WALRowsPerSec, b.Replay.SnapshotRecoveryMillis)
	return s
}
