package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/engine"
)

// AppendBench is the committed evidence for the incremental append
// path (BENCH_append.json): query-after-append latency must scale with
// the DELTA size, not the table size, while a cold full-table scan of
// the same contents stays roughly flat. Medians over Iterations runs
// keep scheduler noise out of the record.
type AppendBench struct {
	Rows       int    `json:"rows"`
	Seed       int64  `json:"seed"`
	Iterations int    `json:"iterations"`
	Query      string `json:"query"`
	// PrimeMillis is the store-filling cold pass over the base table.
	PrimeMillis float64 `json:"primeMillis"`
	// Deltas are measured independently against the primed base.
	Deltas []AppendPoint `json:"deltas"`
}

// AppendPoint measures query-after-append latency for one delta size.
type AppendPoint struct {
	// Delta is the appended batch size; TotalRows the table size after.
	Delta     int `json:"delta"`
	TotalRows int `json:"totalRows"`
	// IncrementalMillis is the median FIRST-query-after-append latency
	// on the persistent live instance: each sample appends a fresh
	// batch of Delta rows and times the next recommendation, which
	// reuses every sealed chunk's partials and the collector's
	// accumulated statistics, scanning only the delta.
	IncrementalMillis float64 `json:"incrementalMillis"`
	// ColdMillis is the same request against a fresh instance holding
	// identical contents — no chunk-partial store, no accumulated
	// collector state — the O(table) cost incremental execution avoids.
	ColdMillis float64 `json:"coldMillis"`
	// Speedup = ColdMillis / IncrementalMillis.
	Speedup float64 `json:"speedup"`
	// RowsScanned / RowsReused are the store's counter deltas for one
	// representative request; ReuseRatio = reused / (reused + scanned).
	RowsScanned int64   `json:"rowsScanned"`
	RowsReused  int64   `json:"rowsReused"`
	ReuseRatio  float64 `json:"reuseRatio"`
}

// JSON renders the bench as indented JSON.
func (b *AppendBench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// appendBatch builds delta deterministic extra superstore rows, drawn
// from the same generator with a distinct seed so batches differ.
func appendBatch(delta int, seed int64) [][]engine.Value {
	src := datagen.Superstore("batch", delta, seed)
	rows := make([][]engine.Value, delta)
	for i := range rows {
		rows[i] = src.Row(i)
	}
	return rows
}

// RunAppendBench measures query-after-append latency as a function of
// delta size on the superstore workload at the given base scale.
func RunAppendBench(rows int, deltas []int, seed int64, iterations int) (*AppendBench, error) {
	if iterations < 3 {
		iterations = 3
	}
	b := &AppendBench{
		Rows:       rows,
		Seed:       seed,
		Iterations: iterations,
		Query:      "SELECT * FROM orders WHERE category = 'Furniture'",
	}
	q := core.Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}
	opts := core.DefaultOptions()
	ctx := context.Background()

	// The live instance persists across the whole run, the way a served
	// table does: one growing table, one chunk-partial store, one
	// metadata collector accumulating state. The view-result cache
	// stays OFF — the point is to measure the scan path an append's
	// fingerprint bump forces, not the all-or-nothing hit above it.
	live := datagen.Superstore("orders", rows, seed)
	cat := engine.NewCatalog()
	if err := cat.Register(live); err != nil {
		return nil, err
	}
	ex := engine.NewExecutor(cat)
	store := engine.NewPartialStore(0)
	ex.SetPartialStore(store)
	eng := core.New(ex)

	// Prime: one cold pass fills the store, the chunk-hash memo, and
	// the collector's accumulated statistics.
	start := time.Now()
	if _, err := eng.Recommend(ctx, q, opts); err != nil {
		return nil, err
	}
	b.PrimeMillis = float64(time.Since(start).Microseconds()) / 1000

	batchSeed := seed
	for _, delta := range deltas {
		pt := AppendPoint{Delta: delta}
		incTimes := make([]float64, 0, iterations)
		for it := 0; it < iterations; it++ {
			batchSeed++
			if _, err := live.Append(appendBatch(delta, batchSeed)); err != nil {
				return nil, err
			}
			before := store.Stats()
			t0 := time.Now()
			if _, err := eng.Recommend(ctx, q, opts); err != nil {
				return nil, err
			}
			incTimes = append(incTimes, float64(time.Since(t0).Microseconds())/1000)
			if it == 0 {
				after := store.Stats()
				pt.RowsScanned = after.RowsScanned - before.RowsScanned
				pt.RowsReused = after.RowsReused - before.RowsReused
				if total := pt.RowsScanned + pt.RowsReused; total > 0 {
					pt.ReuseRatio = float64(pt.RowsReused) / float64(total)
				}
			}
		}
		pt.TotalRows = live.NumRows()
		pt.IncrementalMillis = median(incTimes)

		// Cold comparator: a fresh instance per sample over identical
		// contents — no store, no accumulated collector state — pays
		// the full O(table) collect + scan an uncached restart would.
		coldTimes := make([]float64, 0, iterations)
		for it := 0; it < iterations; it++ {
			coldCat := engine.NewCatalog()
			if err := coldCat.Register(live.Clone("orders")); err != nil {
				return nil, err
			}
			coldEng := core.New(engine.NewExecutor(coldCat))
			t0 := time.Now()
			if _, err := coldEng.Recommend(ctx, q, opts); err != nil {
				return nil, err
			}
			coldTimes = append(coldTimes, float64(time.Since(t0).Microseconds())/1000)
		}
		pt.ColdMillis = median(coldTimes)
		if pt.IncrementalMillis > 0 {
			pt.Speedup = pt.ColdMillis / pt.IncrementalMillis
		}
		b.Deltas = append(b.Deltas, pt)
	}
	return b, nil
}

// String renders a one-line-per-point summary for the CLI.
func (b *AppendBench) String() string {
	s := fmt.Sprintf("append bench (rows=%d seed=%d iters=%d): prime=%.1fms\n", b.Rows, b.Seed, b.Iterations, b.PrimeMillis)
	for _, pt := range b.Deltas {
		s += fmt.Sprintf("  delta=%-7d total=%-8d incremental=%.1fms cold=%.1fms speedup=%.1fx reuse=%.2f\n",
			pt.Delta, pt.TotalRows, pt.IncrementalMillis, pt.ColdMillis, pt.Speedup, pt.ReuseRatio)
	}
	return s
}
