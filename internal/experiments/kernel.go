package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"time"

	"seedb/internal/datagen"
	"seedb/internal/engine"
)

// KernelBench is the committed record of the chunk-kernel scan rewrite
// (BENCH_kernel.json): cold-scan throughput of the compiled
// chunk-at-a-time pipeline versus the retained row-at-a-time reference
// scan, on the shapes SeeDB's optimizer actually emits. Both paths run
// the same queries on the same in-memory table with no caches
// installed, so the ratio isolates the kernel rewrite itself; every
// scenario also asserts the two paths return identical results.
type KernelBench struct {
	Rows       int   `json:"rows"`
	Seed       int64 `json:"seed"`
	Iterations int   `json:"iterations"`

	Scenarios []KernelScenario `json:"scenarios"`

	// RefRowsPerMs and KernelRowsPerMs aggregate scanned rows over
	// median wall time across all scenarios; Speedup is their ratio.
	RefRowsPerMs    float64 `json:"refRowsPerMs"`
	KernelRowsPerMs float64 `json:"kernelRowsPerMs"`
	Speedup         float64 `json:"speedup"`
}

// KernelScenario is one query shape measured under both scan paths.
type KernelScenario struct {
	Name string `json:"name"`
	// Desc says what the shape exercises (fast-path layout, predicate
	// kernels, shared scan width).
	Desc string `json:"desc"`

	RefMillis       float64 `json:"refMillis"`
	KernelMillis    float64 `json:"kernelMillis"`
	RefRowsPerMs    float64 `json:"refRowsPerMs"`
	KernelRowsPerMs float64 `json:"kernelRowsPerMs"`
	Speedup         float64 `json:"speedup"`

	// Groups is the result row count of the first grouping set and
	// Identical confirms the two paths returned equal results.
	Groups    int  `json:"groups"`
	Identical bool `json:"identical"`
}

// JSON renders the benchmark as indented JSON.
func (b *KernelBench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// String renders a terminal summary.
func (b *KernelBench) String() string {
	s := fmt.Sprintf("kernel bench (rows=%d seed=%d iters=%d)\n", b.Rows, b.Seed, b.Iterations)
	for _, sc := range b.Scenarios {
		s += fmt.Sprintf("  %-14s ref=%8.1fms kernel=%8.1fms speedup=%5.2fx groups=%d identical=%v\n",
			sc.Name, sc.RefMillis, sc.KernelMillis, sc.Speedup, sc.Groups, sc.Identical)
	}
	s += fmt.Sprintf("  overall: ref=%.0f rows/ms kernel=%.0f rows/ms speedup=%.2fx\n",
		b.RefRowsPerMs, b.KernelRowsPerMs, b.Speedup)
	return s
}

// kernelScenario pairs a name with the shared-scan call it measures.
type kernelScenario struct {
	name  string
	desc  string
	query *engine.Query
	gsets []engine.GroupingSet
}

func kernelScenarios() []kernelScenario {
	count := engine.AggSpec{Func: engine.AggCount}
	sumSales := engine.AggSpec{Func: engine.AggSum, Column: "sales"}
	avgProfit := engine.AggSpec{Func: engine.AggAvg, Column: "profit"}
	maxProfit := engine.AggSpec{Func: engine.AggMax, Column: "profit"}
	profitable := engine.AggSpec{
		Func: engine.AggCount, Column: "profit", Alias: "profitable",
		Filter: engine.Compare("profit", engine.OpGt, engine.Float(0)),
	}
	return []kernelScenario{
		{
			name: "shared-scan",
			desc: "one scan feeding 4 dimension group-bys (SeeDB's combine-multiple-group-bys shape), dictionary fast path",
			query: &engine.Query{
				Table:       "orders",
				Parallelism: 1,
			},
			gsets: []engine.GroupingSet{
				{By: []string{"region"}, Aggs: []engine.AggSpec{count, sumSales, avgProfit}},
				{By: []string{"category"}, Aggs: []engine.AggSpec{sumSales, profitable}},
				{By: []string{"ship_mode"}, Aggs: []engine.AggSpec{count, avgProfit}},
				{By: []string{"segment"}, Aggs: []engine.AggSpec{sumSales, maxProfit}},
			},
		},
		{
			name: "composite",
			desc: "two-attribute composite code (region x binned quantity) in the dense fast layout",
			query: &engine.Query{
				Table:       "orders",
				Parallelism: 1,
			},
			gsets: []engine.GroupingSet{
				{
					By:        []string{"region", "quantity"},
					Aggs:      []engine.AggSpec{count, sumSales, avgProfit},
					BinWidths: map[string]float64{"quantity": 2},
				},
			},
		},
		{
			name: "binned-int",
			desc: "binned int dimension via dense bin-index accumulators",
			query: &engine.Query{
				Table:       "orders",
				Parallelism: 1,
			},
			gsets: []engine.GroupingSet{
				{
					By:        []string{"quantity"},
					Aggs:      []engine.AggSpec{count, avgProfit, maxProfit},
					BinWidths: map[string]float64{"quantity": 3},
				},
			},
		},
		{
			name: "pair-views",
			desc: "two-attribute dimension pair (region x category) — SeeDB's a1 x a2 view space; dense composite codes vs the hash path",
			query: &engine.Query{
				Table:       "orders",
				Parallelism: 1,
			},
			gsets: []engine.GroupingSet{
				{
					By:   []string{"region", "category"},
					Aggs: []engine.AggSpec{count, sumSales, avgProfit},
				},
			},
		},
		{
			name: "filtered-where",
			desc: "WHERE + aggregate-filter predicate kernels over the selection vector",
			query: &engine.Query{
				Table: "orders",
				Where: engine.And(
					engine.Eq("category", engine.String("Furniture")),
					engine.Compare("discount", engine.OpGt, engine.Float(0.1)),
				),
				Parallelism: 1,
			},
			gsets: []engine.GroupingSet{
				{By: []string{"region"}, Aggs: []engine.AggSpec{count, sumSales, profitable}},
			},
		},
	}
}

// RunKernelBench measures the chunk-kernel scan against the reference
// scan at the given scale. Medians over iterations keep scheduler noise
// out of the record.
func RunKernelBench(rows int, seed int64, iterations int) (*KernelBench, error) {
	if iterations < 3 {
		iterations = 3
	}
	b := &KernelBench{Rows: rows, Seed: seed, Iterations: iterations}

	cat := engine.NewCatalog()
	if err := cat.Register(datagen.Superstore("orders", rows, seed)); err != nil {
		return nil, err
	}
	ex := engine.NewExecutor(cat)
	ctx := context.Background()

	measure := func(sc kernelScenario, ref bool) (millis float64, results []*engine.Result, err error) {
		ex.SetReferenceScan(ref)
		defer ex.SetReferenceScan(false)
		times := make([]float64, 0, iterations)
		for i := 0; i < iterations; i++ {
			start := time.Now()
			results, err = ex.RunSharedScan(ctx, sc.query, sc.gsets)
			if err != nil {
				return 0, nil, err
			}
			times = append(times, float64(time.Since(start).Microseconds())/1000)
		}
		return median(times), results, nil
	}

	var refTotal, kernTotal float64
	for _, sc := range kernelScenarios() {
		refMs, refRes, err := measure(sc, true)
		if err != nil {
			return nil, fmt.Errorf("%s (reference): %w", sc.name, err)
		}
		kernMs, kernRes, err := measure(sc, false)
		if err != nil {
			return nil, fmt.Errorf("%s (kernel): %w", sc.name, err)
		}
		identical := reflect.DeepEqual(refRes, kernRes)
		if !identical {
			return nil, fmt.Errorf("%s: kernel scan results differ from reference scan", sc.name)
		}
		refTotal += refMs
		kernTotal += kernMs
		b.Scenarios = append(b.Scenarios, KernelScenario{
			Name:            sc.name,
			Desc:            sc.desc,
			RefMillis:       refMs,
			KernelMillis:    kernMs,
			RefRowsPerMs:    float64(rows) / refMs,
			KernelRowsPerMs: float64(rows) / kernMs,
			Speedup:         refMs / kernMs,
			Groups:          len(refRes[0].Rows),
			Identical:       identical,
		})
	}
	scans := float64(len(b.Scenarios) * rows)
	b.RefRowsPerMs = scans / refTotal
	b.KernelRowsPerMs = scans / kernTotal
	b.Speedup = refTotal / kernTotal
	return b, nil
}
