package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in
// quick mode and sanity-checks the reports. This is the integration
// test that keeps the benchmark harness honest.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, runner := range Registry {
		runner := runner
		t.Run(runner.ID, func(t *testing.T) {
			rep, err := runner.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", runner.ID, err)
			}
			if rep.ID != runner.ID {
				t.Errorf("report ID = %q, want %q", rep.ID, runner.ID)
			}
			if len(rep.Rows) == 0 {
				t.Error("report has no rows")
			}
			if len(rep.Headers) == 0 {
				t.Error("report has no headers")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Headers) {
					t.Errorf("row width %d != header width %d: %v", len(row), len(rep.Headers), row)
				}
			}
			out := rep.String()
			if !strings.Contains(out, rep.Title) || !strings.Contains(out, rep.ID) {
				t.Error("String() missing title or id")
			}
		})
	}
}

// TestExperimentOutcomes asserts the shape claims the paper makes, on
// the quick configuration.
func TestExperimentOutcomes(t *testing.T) {
	cfg := QuickConfig()

	t.Run("E1-exact-match", func(t *testing.T) {
		rep, err := Run("E1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("Table 1 row mismatch: %v", row)
			}
		}
	})

	t.Run("E2-ordering-holds", func(t *testing.T) {
		rep, err := Run("E2", cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Rows {
			if row[3] != "true" {
				t.Errorf("metric %s: U(A) <= U(B)", row[0])
			}
		}
	})

	t.Run("E5-halves-scans", func(t *testing.T) {
		rep, err := Run("E5", cfg)
		if err != nil {
			t.Fatal(err)
		}
		// separate scans ≈ 2 × combined scans (+1 count query each).
		for _, row := range rep.Rows {
			sep, comb := row[4], row[5]
			if sep == comb {
				t.Errorf("scan counts should differ: %v", row)
			}
		}
	})

	t.Run("E7-results-stable", func(t *testing.T) {
		rep, err := Run("E7", cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Rows {
			if row[4] != "true" {
				t.Errorf("strategy %q changed the top view", row[0])
			}
		}
	})

	t.Run("E14-strong-plants-recovered", func(t *testing.T) {
		rep, err := Run("E14", cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := rep.Rows[len(rep.Rows)-1] // strongest plant
		if last[1] != "1.00" {
			t.Errorf("strong planted views should be fully recovered: %v", last)
		}
	})
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", QuickConfig()); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestHelpers(t *testing.T) {
	if j := jaccard([]string{"a", "b"}, []string{"b", "c"}); j != 1.0/3 {
		t.Errorf("jaccard = %v", j)
	}
	if j := jaccard(nil, nil); j != 1 {
		t.Errorf("empty jaccard = %v", j)
	}
	if j := jaccard([]string{"a"}, []string{"a", "a"}); j != 1 {
		t.Errorf("duplicate-tolerant jaccard = %v", j)
	}
	if k := kendallTau([]string{"a", "b", "c"}, []string{"a", "b", "c"}); k != 1 {
		t.Errorf("identical tau = %v", k)
	}
	if k := kendallTau([]string{"a", "b", "c"}, []string{"c", "b", "a"}); k != -1 {
		t.Errorf("reversed tau = %v", k)
	}
	if k := kendallTau([]string{"a"}, []string{"a"}); k != 1 {
		t.Errorf("singleton tau = %v", k)
	}
	if k := kendallTau([]string{"a", "x"}, []string{"y", "a"}); k != 1 {
		t.Errorf("disjoint-mostly tau = %v", k)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := DefaultConfig()
	if d.Rows <= 0 || d.Quick {
		t.Errorf("DefaultConfig = %+v", d)
	}
	q := QuickConfig()
	if !q.Quick {
		t.Errorf("QuickConfig = %+v", q)
	}
	var zero Config
	if zero.rows(123) != 123 {
		t.Error("rows default wrong")
	}
	if (Config{Rows: 5}).rows(123) != 5 {
		t.Error("rows override wrong")
	}
}

func TestRunWALBenchSmoke(t *testing.T) {
	b, err := RunWALBench(4000, 500, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Modes) != 3 {
		t.Fatalf("want 3 modes, got %+v", b.Modes)
	}
	for _, pt := range b.Modes {
		if pt.IngestMillis <= 0 || pt.RowsPerSec <= 0 {
			t.Fatalf("mode %s has no measurement: %+v", pt.Mode, pt)
		}
	}
	if b.Modes[2].Syncs != int64(b.Batches) {
		t.Fatalf("fsync-per-batch should sync once per batch: %+v", b.Modes[2])
	}
	if b.Replay.ReplayedRows != b.Rows || b.Replay.WALReplayMillis <= 0 {
		t.Fatalf("replay measurement missing: %+v", b.Replay)
	}
	if _, err := b.JSON(); err != nil {
		t.Fatal(err)
	}
}
