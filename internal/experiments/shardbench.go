package experiments

import (
	"context"
	"encoding/json"
	"runtime"
	"time"

	"seedb/internal/cluster"
	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/engine"
)

// ShardBench is the committed shard-scaling reference point
// (BENCH_shard.json): single-node vs N-shard latency for the
// scan-bound recommendation workload, at several table sizes.
//
// Two latencies are recorded per point. WallMillis is end-to-end on
// the benchmark host — on a host with fewer cores than shards it stays
// flat, because in-process shards compete for the same cores.
// ProjectedMillis is the distributed-mode latency: gather/merge cost
// plus the SLOWEST single shard's execution time, measured with shards
// run back-to-back so their timings don't interleave. On an N-node
// cluster (or an N-core host) wall clock converges to the projected
// number; the projected curve is therefore the honest statement of
// what horizontal partitioning buys, independent of how many cores the
// CI machine happens to have.
type ShardBench struct {
	Seed       int64  `json:"seed"`
	Iterations int    `json:"iterations"`
	Query      string `json:"query"`
	HostCores  int    `json:"hostCores"`
	Note       string `json:"note"`

	Workloads []ShardWorkload `json:"workloads"`
}

// ShardWorkload is the scaling curve at one table size.
type ShardWorkload struct {
	Rows         int          `json:"rows"`
	SingleMillis float64      `json:"singleMillis"`
	Curve        []ShardPoint `json:"curve"`
}

// ShardPoint is one shard count's measurement.
type ShardPoint struct {
	Shards           int     `json:"shards"`
	WallMillis       float64 `json:"wallMillis"`
	ProjectedMillis  float64 `json:"projectedMillis"`
	SpeedupWall      float64 `json:"speedupWall"`
	SpeedupProjected float64 `json:"speedupProjected"`
}

// JSON renders the benchmark as indented JSON.
func (b *ShardBench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// shardBenchOptions pins the workload scan-bound and deterministic:
// no cache, no sampling, single-threaded scans (so the curve isolates
// horizontal partitioning, not intra-query threading).
func shardBenchOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	opts.SampleFraction = 0
	return opts
}

// RunShardBench measures the single-node vs sharded latency curve.
func RunShardBench(rowsList, shardsList []int, seed int64, iterations int) (*ShardBench, error) {
	if iterations < 3 {
		iterations = 3
	}
	b := &ShardBench{
		Seed:       seed,
		Iterations: iterations,
		Query:      "SELECT * FROM orders WHERE category = 'Furniture'",
		HostCores:  runtime.NumCPU(),
		Note: "wallMillis is end-to-end on this host; projectedMillis = merge cost + slowest shard " +
			"(shards timed back-to-back), i.e. the latency of a cluster with one node per shard. " +
			"Sharded results are byte-identical to single-node for every shard count.",
	}
	q := core.Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}
	ctx := context.Background()

	for _, rows := range rowsList {
		cat := engine.NewCatalog()
		if err := cat.Register(datagen.Superstore("orders", rows, seed)); err != nil {
			return nil, err
		}
		ex := engine.NewExecutor(cat)
		eng := core.New(ex)

		measure := func() (float64, error) {
			times := make([]float64, 0, iterations)
			for i := 0; i < iterations; i++ {
				start := time.Now()
				if _, err := eng.Recommend(ctx, q, shardBenchOptions()); err != nil {
					return 0, err
				}
				times = append(times, float64(time.Since(start).Microseconds())/1000)
			}
			return median(times), nil
		}

		w := ShardWorkload{Rows: rows}
		var err error
		if w.SingleMillis, err = measure(); err != nil {
			return nil, err
		}

		for _, n := range shardsList {
			pt := ShardPoint{Shards: n}

			// Wall clock: shards fully concurrent.
			eng.SetBackend(cluster.NewLocal(ex, n, cluster.Config{}))
			if pt.WallMillis, err = measure(); err != nil {
				return nil, err
			}

			// Projected: shards back-to-back (MaxConcurrent=1) so each
			// shard's own latency is clean, then replace the serialized
			// scatter time with (merge + slowest shard).
			sb := cluster.NewLocal(ex, n, cluster.Config{MaxConcurrent: 1})
			eng.SetBackend(sb)
			projected := make([]float64, 0, iterations)
			for i := 0; i < iterations; i++ {
				sb.ResetScatterClock()
				start := time.Now()
				if _, err := eng.Recommend(ctx, q, shardBenchOptions()); err != nil {
					return nil, err
				}
				wall := time.Since(start)
				serialized, proj := sb.ScatterClock()
				projected = append(projected, float64((wall-serialized+proj).Microseconds())/1000)
			}
			pt.ProjectedMillis = median(projected)
			eng.SetBackend(nil)

			if pt.WallMillis > 0 {
				pt.SpeedupWall = w.SingleMillis / pt.WallMillis
			}
			if pt.ProjectedMillis > 0 {
				pt.SpeedupProjected = w.SingleMillis / pt.ProjectedMillis
			}
			w.Curve = append(w.Curve, pt)
		}
		b.Workloads = append(b.Workloads, w)
	}
	return b, nil
}
