package experiments

import (
	"context"
	"fmt"
	"time"

	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/engine"
)

// reps returns the repetition count for timing medians.
func reps(cfg Config) int {
	if cfg.Quick {
		return 1
	}
	return 3
}

// recommendTimed runs Recommend and returns the result plus the median
// wall time over reps runs.
func recommendTimed(cfg Config, e *core.Engine, q core.Query, opts core.Options) (*core.Result, time.Duration, error) {
	var res *core.Result
	d, err := medianTime(reps(cfg), func() error {
		var err error
		res, err = e.Recommend(context.Background(), q, opts)
		return err
	})
	return res, d, err
}

// stdOpts returns the baseline option set used by the optimization
// experiments: pruning off (so every configuration computes the same
// views) and a fixed aggregate list.
func stdOpts() core.Options {
	o := core.BasicOptions()
	o.K = 10
	o.AggFuncs = []engine.AggFunc{engine.AggSum, engine.AggCount, engine.AggAvg}
	return o
}

// ---------------------------------------------------------------------
// E4 — basic vs optimized

func runE4(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E4",
		Title:      "Basic framework (independent view queries) vs fully optimized SeeDB",
		PaperClaim: "the basic approach is clearly inefficient; the optimizations fix this (§3.3)",
		Headers:    []string{"rows", "basic ms", "optimized ms", "speedup", "basic queries", "opt queries", "basic rows read", "opt rows read"},
	}
	sizes := []int{cfg.rows(200_000) / 4, cfg.rows(200_000) / 2, cfg.rows(200_000)}
	if cfg.Quick {
		sizes = []int{cfg.rows(10_000)}
	}
	for _, rows := range sizes {
		e, q, _, err := synEngine(datagen.DefaultSynthetic("e4", rows, cfg.Seed))
		if err != nil {
			return nil, err
		}
		basic := stdOpts()
		resBasic, dBasic, err := recommendTimed(cfg, e, q, basic)
		if err != nil {
			return nil, err
		}
		opt := stdOpts()
		opt.CombineTargetComparison = true
		opt.CombineAggregates = true
		opt.CombineGroupBys = core.CombineGroupingSets
		opt.Parallelism = 0 // GOMAXPROCS
		resOpt, dOpt, err := recommendTimed(cfg, e, q, opt)
		if err != nil {
			return nil, err
		}
		r.addRow(
			fmt.Sprintf("%d", rows),
			ms(dBasic), ms(dOpt),
			fmt.Sprintf("%.1fx", float64(dBasic)/float64(dOpt)),
			fmt.Sprintf("%d", resBasic.Stats.QueriesIssued),
			fmt.Sprintf("%d", resOpt.Stats.QueriesIssued),
			fmt.Sprintf("%d", resBasic.Stats.RowsRead),
			fmt.Sprintf("%d", resOpt.Stats.RowsRead))
	}
	r.notef("all optimizations together collapse ~2·|views| scans into a handful of shared scans")
	return r, nil
}

// ---------------------------------------------------------------------
// E5 — combine target & comparison

func runE5(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E5",
		Title:      "Combining each view's target and comparison query into one conditional-aggregation scan",
		PaperClaim: "this simple optimization halves the time required to compute the results for a single view (§3.3)",
		Headers:    []string{"rows", "separate ms", "combined ms", "speedup", "separate scans", "combined scans"},
	}
	sizes := []int{cfg.rows(200_000) / 2, cfg.rows(200_000)}
	if cfg.Quick {
		sizes = []int{cfg.rows(10_000)}
	}
	for _, rows := range sizes {
		e, q, _, err := synEngine(datagen.DefaultSynthetic("e5", rows, cfg.Seed))
		if err != nil {
			return nil, err
		}
		sep := stdOpts()
		resSep, dSep, err := recommendTimed(cfg, e, q, sep)
		if err != nil {
			return nil, err
		}
		comb := stdOpts()
		comb.CombineTargetComparison = true
		resComb, dComb, err := recommendTimed(cfg, e, q, comb)
		if err != nil {
			return nil, err
		}
		r.addRow(
			fmt.Sprintf("%d", rows),
			ms(dSep), ms(dComb),
			fmt.Sprintf("%.2fx", float64(dSep)/float64(dComb)),
			fmt.Sprintf("%d", resSep.Stats.TableScans),
			fmt.Sprintf("%d", resComb.Stats.TableScans))
	}
	r.notef("scan counts halve exactly (2·views+1 → views+1); wall-clock speedup approaches 2x as scans dominate")
	return r, nil
}

// ---------------------------------------------------------------------
// E6 — combine multiple aggregates

func runE6(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E6",
		Title:      "Combining view queries that share a group-by attribute (multiple aggregates per query)",
		PaperClaim: "this rewriting provides a speed up linear in the number of aggregate attributes (§3.3)",
		Headers:    []string{"measures", "independent ms", "combined ms", "speedup", "independent queries", "combined queries"},
	}
	counts := []int{1, 2, 4, 6, 8, 10}
	if cfg.Quick {
		counts = []int{1, 2, 4}
	}
	rows := cfg.rows(200_000) / 2
	if cfg.Quick {
		rows = cfg.rows(10_000)
	}
	for _, m := range counts {
		synth := datagen.SyntheticConfig{
			Name: "e6", Rows: rows, Seed: cfg.Seed, TargetFraction: 0.1,
			Dims: []datagen.DimSpec{{Name: "d0", Card: 10}, {Name: "d1", Card: 10}, {Name: "d2", Card: 10}},
		}
		for i := 0; i < m; i++ {
			synth.Measures = append(synth.Measures, datagen.MeasureSpec{Name: fmt.Sprintf("m%d", i), Mean: 100, Stddev: 20})
		}
		e, q, _, err := synEngine(synth)
		if err != nil {
			return nil, err
		}
		indep := stdOpts()
		indep.AggFuncs = []engine.AggFunc{engine.AggSum}
		indep.CombineTargetComparison = true // isolate aggregate combining
		resIndep, dIndep, err := recommendTimed(cfg, e, q, indep)
		if err != nil {
			return nil, err
		}
		comb := indep
		comb.CombineAggregates = true
		resComb, dComb, err := recommendTimed(cfg, e, q, comb)
		if err != nil {
			return nil, err
		}
		r.addRow(
			fmt.Sprintf("%d", m),
			ms(dIndep), ms(dComb),
			fmt.Sprintf("%.2fx", float64(dIndep)/float64(dComb)),
			fmt.Sprintf("%d", resIndep.Stats.QueriesIssued),
			fmt.Sprintf("%d", resComb.Stats.QueriesIssued))
	}
	r.notef("queries drop from dims·measures to dims; speedup grows ~linearly with the measure count")
	return r, nil
}

// ---------------------------------------------------------------------
// E7 — combine multiple group-bys

func runE7(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E7",
		Title:      "Combining queries with different group-by attributes under a memory (group) budget",
		PaperClaim: "model as a variant of bin-packing and apply ILP techniques; number of combinable views depends on memory (§3.3)",
		Headers:    []string{"strategy", "budget (groups)", "queries", "ms", "top-1 unchanged"},
	}
	rows := cfg.rows(200_000) / 2
	if cfg.Quick {
		rows = cfg.rows(10_000)
	}
	synth := datagen.SyntheticConfig{
		Name: "e7", Rows: rows, Seed: cfg.Seed, TargetFraction: 0.1,
		Deviations: []datagen.Deviation{{Dim: "d1", Measure: "m0", Strength: 2}},
	}
	for i := 0; i < 12; i++ {
		card := 10 + 10*(i%4)
		synth.Dims = append(synth.Dims, datagen.DimSpec{Name: fmt.Sprintf("d%d", i), Card: card})
	}
	synth.Measures = []datagen.MeasureSpec{{Name: "m0", Mean: 100, Stddev: 20}, {Name: "m1", Mean: 50, Stddev: 10}}
	e, q, _, err := synEngine(synth)
	if err != nil {
		return nil, err
	}
	base := stdOpts()
	base.AggFuncs = []engine.AggFunc{engine.AggSum, engine.AggCount}
	base.CombineTargetComparison = true
	base.CombineAggregates = true

	refRes, _, err := recommendTimed(cfg, e, q, base)
	if err != nil {
		return nil, err
	}
	refTop := refRes.Recommendations[0].Data.View

	type variant struct {
		name   string
		mode   core.CombineMode
		budget int
		exact  bool
	}
	variants := []variant{
		{"none (one query per dim)", core.CombineNone, 0, true},
		{"grouping-sets", core.CombineGroupingSets, 60, true},
		{"grouping-sets", core.CombineGroupingSets, 200, true},
		{"grouping-sets", core.CombineGroupingSets, 1_000_000, true},
		{"composite-key (ILP)", core.CombineCompositeKey, 2_000, true},
		{"composite-key (FFD)", core.CombineCompositeKey, 2_000, false},
		{"composite-key (ILP)", core.CombineCompositeKey, 100_000, true},
	}
	for _, v := range variants {
		opts := base
		opts.CombineGroupBys = v.mode
		if v.budget > 0 {
			opts.GroupBudget = v.budget
		}
		opts.ExactPacking = v.exact
		res, d, err := recommendTimed(cfg, e, q, opts)
		if err != nil {
			return nil, err
		}
		budget := "-"
		if v.mode != core.CombineNone {
			budget = fmt.Sprintf("%d", v.budget)
		}
		r.addRow(v.name, budget,
			fmt.Sprintf("%d", res.Stats.QueriesIssued),
			ms(d),
			fmt.Sprintf("%v", res.Recommendations[0].Data.View == refTop))
	}
	r.notef("larger budgets pack more dimensions per scan → fewer queries; composite keys trade hash-table size for scans; results identical in all variants")
	return r, nil
}

// ---------------------------------------------------------------------
// E8 — sampling

func runE8(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E8",
		Title:      "Bernoulli sampling: latency vs view accuracy",
		PaperClaim: "sampling affects performance significantly; technique and size affect view accuracy (§3.3)",
		Headers:    []string{"fraction", "ms", "top-5 Jaccard vs exact", "mean |U - U_exact|", "top-1 unchanged"},
	}
	rows := cfg.rows(200_000)
	if cfg.Quick {
		rows = cfg.rows(10_000) * 3
	}
	e, q, _, err := synEngine(datagen.DefaultSynthetic("e8", rows, cfg.Seed))
	if err != nil {
		return nil, err
	}
	opt := stdOpts()
	opt.CombineTargetComparison = true
	opt.CombineAggregates = true
	opt.CombineGroupBys = core.CombineGroupingSets
	opt.K = 5
	// Sampling accuracy is measured over the categorical view space:
	// binned numeric dims add sparse tail buckets whose membership
	// changes under sampling, which measures bin stability rather than
	// utility estimation.
	opt.BinContinuousDims = false

	exactRes, dExact, err := recommendTimed(cfg, e, q, opt)
	if err != nil {
		return nil, err
	}
	exactTop := topViews(exactRes, 5)
	exactScores := map[string]float64{}
	for _, s := range exactRes.AllScores {
		exactScores[s.View.Key()] = s.Utility
	}
	r.addRow("1.00 (exact)", ms(dExact), "1.00", "0.0000", "true")

	fractions := []float64{0.5, 0.2, 0.1, 0.05, 0.01}
	if cfg.Quick {
		fractions = []float64{0.5, 0.1}
	}
	for _, f := range fractions {
		opts := opt
		opts.SampleFraction = f
		opts.SampleMinRows = 0
		opts.SampleSeed = uint64(cfg.Seed)
		res, d, err := recommendTimed(cfg, e, q, opts)
		if err != nil {
			return nil, err
		}
		var mae float64
		var n int
		for _, s := range res.AllScores {
			if w, ok := exactScores[s.View.Key()]; ok {
				diff := s.Utility - w
				if diff < 0 {
					diff = -diff
				}
				mae += diff
				n++
			}
		}
		if n > 0 {
			mae /= float64(n)
		}
		r.addRow(
			fmt.Sprintf("%.2f", f),
			ms(d),
			fmt.Sprintf("%.2f", jaccard(exactTop, topViews(res, 5))),
			fmt.Sprintf("%.4f", mae),
			fmt.Sprintf("%v", res.Recommendations[0].Data.View == exactRes.Recommendations[0].Data.View))
	}
	r.notef("latency falls roughly with the fraction; utility error grows as the sampled subset shrinks (|D_Q|·fraction rows feed the target side)")
	return r, nil
}

func topViews(res *core.Result, k int) []string {
	var out []string
	for i, rec := range res.Recommendations {
		if i >= k {
			break
		}
		out = append(out, rec.Data.View.Key())
	}
	return out
}

// ---------------------------------------------------------------------
// E9 — parallel execution

func runE9(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E9",
		Title:      "Parallel view-query execution",
		PaperClaim: "as queries run in parallel, total latency decreases at the cost of increased per-query execution time (§3.3)",
		Headers:    []string{"workers", "total ms", "approx per-query ms", "queries"},
	}
	rows := cfg.rows(200_000)
	if cfg.Quick {
		rows = cfg.rows(10_000) * 2
	}
	e, q, _, err := synEngine(datagen.DefaultSynthetic("e9", rows, cfg.Seed))
	if err != nil {
		return nil, err
	}
	workers := []int{1, 2, 4, 8}
	if cfg.Quick {
		workers = []int{1, 4}
	}
	for _, w := range workers {
		opts := stdOpts()
		opts.CombineTargetComparison = true
		opts.CombineAggregates = true
		opts.CombineGroupBys = core.CombineNone // many independent queries to parallelize
		opts.Parallelism = w
		res, d, err := recommendTimed(cfg, e, q, opts)
		if err != nil {
			return nil, err
		}
		queries := res.Stats.QueriesIssued
		perQuery := float64(d.Microseconds()) / 1000 * float64(w) / float64(queries)
		r.addRow(
			fmt.Sprintf("%d", w),
			ms(d),
			fmt.Sprintf("%.2f", perQuery),
			fmt.Sprintf("%d", queries))
	}
	r.notef("total latency drops with workers while estimated per-query time (total·workers/queries) rises with contention — the paper's trade-off")
	return r, nil
}
