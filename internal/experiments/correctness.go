package experiments

import (
	"context"
	"fmt"
	"math"

	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/distance"
	"seedb/internal/engine"
)

// laserwaveEngine builds the paper's running example.
func laserwaveEngine(scen datagen.LaserwaveScenario) (*core.Engine, core.Query, error) {
	cat := engine.NewCatalog()
	if err := cat.Register(datagen.Laserwave("sales", scen)); err != nil {
		return nil, core.Query{}, err
	}
	e := core.New(engine.NewExecutor(cat))
	q := core.Query{Table: "sales", Predicate: engine.Eq("product", engine.String("Laserwave"))}
	return e, q, nil
}

// synEngine builds a synthetic engine with the standard planted config
// at the given scale.
func synEngine(cfg datagen.SyntheticConfig) (*core.Engine, core.Query, datagen.GroundTruth, error) {
	tb, gt, err := datagen.Synthetic(cfg)
	if err != nil {
		return nil, core.Query{}, gt, err
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tb); err != nil {
		return nil, core.Query{}, gt, err
	}
	return core.New(engine.NewExecutor(cat)), core.Query{Table: cfg.Name, Predicate: gt.Predicate}, gt, nil
}

// findScore returns the utility of the (dim, measure, f) view.
func findScore(res *core.Result, dim, measure string, f engine.AggFunc) (float64, bool) {
	for _, s := range res.AllScores {
		if s.View.Dimension == dim && s.View.Measure == measure && s.View.Func == f {
			return s.Utility, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// E1 — Table 1 / Figure 1

func runE1(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E1",
		Title:      "Laserwave total sales by store (paper Table 1) and its normalized distribution (§2)",
		PaperClaim: "P[V(D_Q)] = (180.55, 145.50, 122.00, 90.13)/538.18",
		Headers:    []string{"store", "paper total ($)", "measured total ($)", "paper P", "measured P", "match"},
	}
	e, q, err := laserwaveEngine(datagen.ScenarioA)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.AggFuncs = []engine.AggFunc{engine.AggSum}
	res, err := e.Recommend(context.Background(), q, opts)
	if err != nil {
		return nil, err
	}
	var store *core.ViewData
	for _, rec := range res.Recommendations {
		if rec.Data.View.Dimension == "store" && rec.Data.View.Measure == "amount" {
			store = rec.Data
		}
	}
	if store == nil {
		return nil, fmt.Errorf("E1: store view not recommended")
	}
	total := 0.0
	for _, v := range datagen.LaserwaveSales {
		total += v
	}
	byKey := map[string]int{}
	for i, k := range store.Keys {
		byKey[k] = i
	}
	allMatch := true
	for i, st := range datagen.LaserwaveStores {
		idx, ok := byKey[st]
		if !ok {
			return nil, fmt.Errorf("E1: store %q missing from view", st)
		}
		paperP := datagen.LaserwaveSales[i] / total
		match := math.Abs(store.TargetRaw[idx]-datagen.LaserwaveSales[i]) < 1e-9 &&
			math.Abs(store.Target[idx]-paperP) < 1e-9
		if !match {
			allMatch = false
		}
		r.addRow(st,
			fmt.Sprintf("%.2f", datagen.LaserwaveSales[i]),
			fmt.Sprintf("%.2f", store.TargetRaw[idx]),
			fmt.Sprintf("%.6f", paperP),
			fmt.Sprintf("%.6f", store.Target[idx]),
			fmt.Sprintf("%v", match))
	}
	r.notef("all rows match the paper exactly: %v", allMatch)
	return r, nil
}

// ---------------------------------------------------------------------
// E2 — Figures 1-3

func runE2(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E2",
		Title:      "Utility of SUM(amount) BY store under Scenario A (Fig. 2) vs Scenario B (Fig. 3)",
		PaperClaim: "the view is interesting iff the subset trend deviates from the overall trend",
		Headers:    []string{"metric", "U(scenario A)", "U(scenario B)", "A > B"},
	}
	ctx := context.Background()
	allHold := true
	for _, metric := range distance.Names() {
		var utilities [2]float64
		for si, scen := range []datagen.LaserwaveScenario{datagen.ScenarioA, datagen.ScenarioB} {
			e, q, err := laserwaveEngine(scen)
			if err != nil {
				return nil, err
			}
			opts := core.DefaultOptions()
			opts.Metric = metric
			opts.AggFuncs = []engine.AggFunc{engine.AggSum}
			res, err := e.Recommend(ctx, q, opts)
			if err != nil {
				return nil, err
			}
			u, ok := findScore(res, "store", "amount", engine.AggSum)
			if !ok {
				return nil, fmt.Errorf("E2: store view missing (metric %s)", metric)
			}
			utilities[si] = u
		}
		holds := utilities[0] > utilities[1]
		if !holds {
			allHold = false
		}
		r.addRow(metric,
			fmt.Sprintf("%.4f", utilities[0]),
			fmt.Sprintf("%.4f", utilities[1]),
			fmt.Sprintf("%v", holds))
	}
	r.notef("U(A) > U(B) under every metric: %v", allHold)
	return r, nil
}

// ---------------------------------------------------------------------
// E3 — quadratic view space

func runE3(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "E3",
		Title:      "Candidate views vs attribute count",
		PaperClaim: "the number of candidate views increases as the square of the number of attributes (§1)",
		Headers:    []string{"attributes", "dims", "measures", "candidate views", "views / attrs^2"},
	}
	attrs := []int{10, 20, 40, 60, 80}
	if cfg.Quick {
		attrs = []int{10, 20, 40}
	}
	for _, a := range attrs {
		// Split attributes half dims, half measures; one aggregate
		// function, the paper's framing.
		synth := datagen.SyntheticConfig{
			Name: "e3", Rows: 100, Seed: cfg.Seed,
			TargetFraction: 0.5,
		}
		for i := 0; i < a/2; i++ {
			synth.Dims = append(synth.Dims, datagen.DimSpec{Name: fmt.Sprintf("d%d", i), Card: 5})
		}
		for i := 0; i < a-a/2; i++ {
			synth.Measures = append(synth.Measures, datagen.MeasureSpec{Name: fmt.Sprintf("m%d", i), Mean: 10, Stddev: 2})
		}
		e, q, _, err := synEngine(synth)
		if err != nil {
			return nil, err
		}
		opts := core.BasicOptions()
		opts.AggFuncs = []engine.AggFunc{engine.AggSum}
		opts.K = 5
		res, err := e.Recommend(context.Background(), q, opts)
		if err != nil {
			return nil, err
		}
		n := res.Stats.CandidateViews
		r.addRow(
			fmt.Sprintf("%d", a),
			fmt.Sprintf("%d", a/2),
			fmt.Sprintf("%d", a-a/2),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", float64(n)/float64(a*a)))
	}
	r.notef("views/attrs² is constant (≈1/4 − 1/(2·attrs)): growth is quadratic, matching §1")
	return r, nil
}
