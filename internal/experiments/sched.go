package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/engine"
	"seedb/internal/service"
)

// SchedBench is the committed scheduler benchmark (BENCH_sched.json):
// K concurrent requests fired at the service layer, identical vs
// distinct, cold vs warm cache. The headline claim it records: K
// identical concurrent requests cost ~1 pipeline run — the scheduler
// coalesces the duplicates onto one run instead of executing K
// pipelines — while K distinct requests spread across the worker
// pool.
type SchedBench struct {
	Rows              int    `json:"rows"`
	Seed              int64  `json:"seed"`
	Requests          int    `json:"requests"`
	Iterations        int    `json:"iterations"`
	MaxConcurrentRuns int    `json:"maxConcurrentRuns"`
	Query             string `json:"query"`

	// SoloColdMillis is one request alone on a cold cache — the cost
	// of a pipeline run, and the yardstick for the identical burst.
	SoloColdMillis float64 `json:"soloColdMillis"`

	// Bursts holds one entry per (mode, cache temperature) cell.
	Bursts []SchedBurst `json:"bursts"`

	// SpeedupIdenticalCold = Requests * SoloColdMillis /
	// identical-cold wall: how close the coalesced burst gets to the
	// ideal "K requests for the price of one run".
	SpeedupIdenticalCold float64 `json:"speedupIdenticalCold"`
}

// SchedBurst is one measured burst of concurrent requests.
type SchedBurst struct {
	// Mode is "identical" (every request the same signature) or
	// "distinct" (every request a different analyst query).
	Mode string `json:"mode"`
	// Warm reports whether the view cache was primed first.
	Warm bool `json:"warm"`
	// WallMillis is the median wall time for the whole burst (all
	// Requests completed).
	WallMillis float64 `json:"wallMillis"`
	// PerRequestMillis = WallMillis / Requests.
	PerRequestMillis float64 `json:"perRequestMillis"`
	// RunsStarted and Coalesced are the scheduler counters the burst
	// produced (medians across iterations are not meaningful for
	// counters, so the last iteration's delta is recorded; it is
	// deterministic for the identical burst).
	RunsStarted int64 `json:"runsStarted"`
	Coalesced   int64 `json:"coalesced"`
	// CoalesceRatio = Coalesced / Requests.
	CoalesceRatio float64 `json:"coalesceRatio"`
}

// JSON renders the benchmark as indented JSON.
func (b *SchedBench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// String renders a human-readable summary.
func (b *SchedBench) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "sched (rows=%d seed=%d requests=%d workers=%d): solo cold %.1fms\n",
		b.Rows, b.Seed, b.Requests, b.MaxConcurrentRuns, b.SoloColdMillis)
	for _, p := range b.Bursts {
		temp := "cold"
		if p.Warm {
			temp = "warm"
		}
		fmt.Fprintf(&s, "  %-9s %s: wall=%.1fms (%.1fms/req) runs=%d coalesced=%d (ratio %.2f)\n",
			p.Mode, temp, p.WallMillis, p.PerRequestMillis, p.RunsStarted, p.Coalesced, p.CoalesceRatio)
	}
	fmt.Fprintf(&s, "  K identical cold vs K solo cold runs: %.1fx\n", b.SpeedupIdenticalCold)
	return s.String()
}

// schedQueries builds n distinct analyst queries over the superstore
// schema (categories, regions, segments — all low-cardinality columns
// with every value populated).
func schedQueries(n int) []core.Query {
	var qs []core.Query
	add := func(col, val string) {
		qs = append(qs, core.Query{Table: "orders", Predicate: engine.Eq(col, engine.String(val))})
	}
	for _, v := range []string{"Furniture", "Technology", "Office Supplies"} {
		add("category", v)
	}
	for _, v := range []string{"East", "West", "Central", "South"} {
		add("region", v)
	}
	for _, v := range []string{"Consumer", "Corporate", "Home Office"} {
		add("segment", v)
	}
	for len(qs) < n { // wrap with ship modes if a caller asks for more
		add("ship_mode", []string{"Standard Class", "Second Class", "First Class", "Same Day"}[len(qs)%4])
	}
	return qs[:n]
}

// RunSchedBench measures the scheduler under concurrent load at the
// given scale. requests is the burst width K; iterations bursts are
// run per cell and the median wall time recorded.
func RunSchedBench(rows, requests int, seed int64, iterations int) (*SchedBench, error) {
	if iterations < 3 {
		iterations = 3
	}
	if requests < 2 {
		requests = 2
	}
	b := &SchedBench{
		Rows:       rows,
		Seed:       seed,
		Requests:   requests,
		Iterations: iterations,
		Query:      "SELECT * FROM orders WHERE category = 'Furniture'",
	}
	opts := core.DefaultOptions()
	ctx := context.Background()
	identical := core.Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}
	distinct := schedQueries(requests)

	newManager := func() (*service.Manager, error) {
		cat := engine.NewCatalog()
		if err := cat.Register(datagen.Superstore("orders", rows, seed)); err != nil {
			return nil, err
		}
		m := service.NewManager(core.New(engine.NewExecutor(cat)), service.Config{})
		b.MaxConcurrentRuns = m.SchedulerStats().MaxConcurrentRuns
		return m, nil
	}

	// Solo cold reference: one request, fresh manager each time.
	soloTimes := make([]float64, 0, iterations)
	for i := 0; i < iterations; i++ {
		m, err := newManager()
		if err != nil {
			return nil, err
		}
		sess := m.NewSession(opts)
		start := time.Now()
		if _, err := sess.Recommend(ctx, identical, nil); err != nil {
			return nil, err
		}
		soloTimes = append(soloTimes, float64(time.Since(start).Microseconds())/1000)
	}
	b.SoloColdMillis = median(soloTimes)

	// burst fires `requests` concurrent session requests and returns
	// the wall time plus the scheduler-counter deltas.
	burst := func(m *service.Manager, queries func(i int) core.Query) (float64, int64, int64, error) {
		sess := m.NewSession(opts)
		before := m.SchedulerStats()
		var wg sync.WaitGroup
		errs := make([]error, requests)
		start := time.Now()
		for i := 0; i < requests; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = sess.Recommend(ctx, queries(i), nil)
			}(i)
		}
		wg.Wait()
		wall := float64(time.Since(start).Microseconds()) / 1000
		for _, err := range errs {
			if err != nil {
				return 0, 0, 0, err
			}
		}
		after := m.SchedulerStats()
		return wall, after.RunsStarted - before.RunsStarted, after.Coalesced - before.Coalesced, nil
	}

	cell := func(mode string, warm bool, queries func(i int) core.Query) error {
		times := make([]float64, 0, iterations)
		var runs, coalesced int64
		var warmMgr *service.Manager
		if warm {
			m, err := newManager()
			if err != nil {
				return err
			}
			// Prime: one pass over every query in the burst.
			sess := m.NewSession(opts)
			for j := 0; j < requests; j++ {
				if _, err := sess.Recommend(ctx, queries(j), nil); err != nil {
					return err
				}
			}
			warmMgr = m
		}
		for i := 0; i < iterations; i++ {
			m := warmMgr
			if !warm {
				fresh, err := newManager()
				if err != nil {
					return err
				}
				m = fresh
			}
			wall, r, c, err := burst(m, queries)
			if err != nil {
				return err
			}
			times = append(times, wall)
			runs, coalesced = r, c
		}
		b.Bursts = append(b.Bursts, SchedBurst{
			Mode:             mode,
			Warm:             warm,
			WallMillis:       median(times),
			PerRequestMillis: median(times) / float64(requests),
			RunsStarted:      runs,
			Coalesced:        coalesced,
			CoalesceRatio:    float64(coalesced) / float64(requests),
		})
		return nil
	}

	identicalQ := func(int) core.Query { return identical }
	distinctQ := func(i int) core.Query { return distinct[i%len(distinct)] }
	for _, c := range []struct {
		mode string
		warm bool
		q    func(int) core.Query
	}{
		{"identical", false, identicalQ},
		{"identical", true, identicalQ},
		{"distinct", false, distinctQ},
		{"distinct", true, distinctQ},
	} {
		if err := cell(c.mode, c.warm, c.q); err != nil {
			return nil, err
		}
	}
	if w := b.Bursts[0].WallMillis; w > 0 {
		b.SpeedupIdenticalCold = float64(requests) * b.SoloColdMillis / w
	}
	return b, nil
}
