package experiments

import (
	"context"
	"encoding/json"
	"time"

	"seedb/internal/cluster"
	"seedb/internal/core"
	"seedb/internal/datagen"
	"seedb/internal/engine"
	"seedb/internal/service"
)

// Baseline is the committed performance reference point
// (BENCH_baseline.json): cold vs warm-cache recommendation latency on
// a fixed workload, so later PRs have a trajectory to compare against.
// Medians over Iterations runs keep scheduler noise out of the record.
type Baseline struct {
	Rows       int    `json:"rows"`
	Seed       int64  `json:"seed"`
	Iterations int    `json:"iterations"`
	Query      string `json:"query"`
	// Shards > 0 means the engine ran in-process scatter-gather across
	// that many table shards (results are identical; only the
	// execution layout changes).
	Shards int `json:"shards,omitempty"`

	// ColdMillis is the per-request latency with no cache installed
	// (every call scans); WarmMillis is the latency once the cache
	// holds the workload's exec units.
	ColdMillis float64 `json:"coldMillis"`
	WarmMillis float64 `json:"warmMillis"`
	// Speedup = ColdMillis / WarmMillis.
	Speedup float64 `json:"speedup"`

	// ViewsPerSec is executed views divided by elapsed time, per mode.
	ViewsPerSecCold float64 `json:"viewsPerSecCold"`
	ViewsPerSecWarm float64 `json:"viewsPerSecWarm"`

	Cache service.CacheStats `json:"cache"`
}

// JSON renders the baseline as indented JSON.
func (b *Baseline) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// RunBaseline measures cold vs warm-cache recommend latency on the
// superstore workload at the given scale. shards > 0 runs the engine
// on an in-process sharded backend (see RunShardBench for the full
// scaling curve).
func RunBaseline(rows int, seed int64, iterations, shards int) (*Baseline, error) {
	if iterations < 3 {
		iterations = 3
	}
	b := &Baseline{
		Rows:       rows,
		Seed:       seed,
		Iterations: iterations,
		Shards:     shards,
		Query:      "SELECT * FROM orders WHERE category = 'Furniture'",
	}
	q := core.Query{Table: "orders", Predicate: engine.Eq("category", engine.String("Furniture"))}
	opts := core.DefaultOptions()
	ctx := context.Background()

	newEngine := func() (*core.Engine, error) {
		cat := engine.NewCatalog()
		if err := cat.Register(datagen.Superstore("orders", rows, seed)); err != nil {
			return nil, err
		}
		ex := engine.NewExecutor(cat)
		eng := core.New(ex)
		if shards > 0 {
			eng.SetBackend(cluster.NewLocal(ex, shards, cluster.Config{}))
		}
		return eng, nil
	}
	measure := func(eng *core.Engine) (medianMillis, viewsPerSec float64, err error) {
		times := make([]float64, 0, iterations)
		var views int
		for i := 0; i < iterations; i++ {
			start := time.Now()
			res, err := eng.Recommend(ctx, q, opts)
			if err != nil {
				return 0, 0, err
			}
			times = append(times, float64(time.Since(start).Microseconds())/1000)
			views = res.Stats.ExecutedViews
		}
		m := median(times)
		return m, float64(views) / (m / 1000), nil
	}

	// Cold: no cache, every iteration scans.
	cold, err := newEngine()
	if err != nil {
		return nil, err
	}
	if b.ColdMillis, b.ViewsPerSecCold, err = measure(cold); err != nil {
		return nil, err
	}

	// Warm: service layer installed, one priming call, then measure
	// fully cached requests.
	warmEng, err := newEngine()
	if err != nil {
		return nil, err
	}
	mgr := service.NewManager(warmEng, service.Config{})
	sess := mgr.NewSession(opts)
	if _, err := sess.Recommend(ctx, q, nil); err != nil {
		return nil, err
	}
	if b.WarmMillis, b.ViewsPerSecWarm, err = measure(warmEng); err != nil {
		return nil, err
	}
	b.Speedup = b.ColdMillis / b.WarmMillis
	b.Cache = mgr.CacheStats()
	return b, nil
}

// median returns the middle value (upper-middle for even lengths).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
