// Package experiments regenerates every table and figure of the SeeDB
// demo paper, plus the quantitative claims of §3.3, as reproducible
// experiments E1–E14 (each runner's doc comment states which paper
// claim it reproduces). Each experiment returns a Report that
// cmd/seedb-bench prints; bench_test.go at the module root wraps each
// one as a Go benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is the printable outcome of one experiment.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Headers    []string
	Rows       [][]string
	Notes      []string
}

// addRow appends a formatted row.
func (r *Report) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// notef appends a formatted note.
func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(r.Headers) > 0 {
		writeRow(r.Headers)
		sep := make([]string, len(r.Headers))
		for i, w := range widths {
			sep[i] = strings.Repeat("-", w)
		}
		writeRow(sep)
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiments. Quick mode shrinks sweeps so the full
// suite runs in seconds (used by tests); the default sizes match the
// paper-scale runs cmd/seedb-bench performs.
type Config struct {
	Rows  int
	Seed  int64
	Quick bool
}

// DefaultConfig returns the sizes used for the recorded results.
func DefaultConfig() Config { return Config{Rows: 200_000, Seed: 42} }

// QuickConfig returns a fast configuration for tests.
func QuickConfig() Config { return Config{Rows: 10_000, Seed: 42, Quick: true} }

func (c Config) rows(def int) int {
	if c.Rows > 0 {
		return c.Rows
	}
	return def
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// Registry lists all experiments in order.
var Registry = []Runner{
	{"E1", "Table 1 / Figure 1: the Laserwave example view", runE1},
	{"E2", "Figures 1-3: deviation separates interesting from boring", runE2},
	{"E3", "View space grows quadratically with attribute count", runE3},
	{"E4", "Basic framework vs fully optimized SeeDB", runE4},
	{"E5", "Combine target+comparison queries (~2x)", runE5},
	{"E6", "Combine multiple aggregates (linear speedup)", runE6},
	{"E7", "Combine multiple group-bys (bin packing / grouping sets)", runE7},
	{"E8", "Sampling: latency vs accuracy", runE8},
	{"E9", "Parallel query execution", runE9},
	{"E10", "View-space pruning strategies", runE10},
	{"E11", "Distance metric comparison", runE11},
	{"E12", "Phased execution with CI pruning (extension)", runE12},
	{"E13", "Scenario 2 knobs: size, attributes, skew", runE13},
	{"E14", "Ground-truth recovery (demo Scenario 1)", runE14},
}

// Run executes the experiment with the given ID ("all" is handled by
// callers iterating Registry).
func Run(id string, cfg Config) (*Report, error) {
	for _, r := range Registry {
		if strings.EqualFold(r.ID, id) {
			return r.Run(cfg)
		}
	}
	ids := make([]string, len(Registry))
	for i, r := range Registry {
		ids[i] = r.ID
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// ---------------------------------------------------------------------
// shared helpers

// timeIt measures one execution of f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// medianTime runs f reps times and returns the median duration.
func medianTime(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		d, err := timeIt(f)
		if err != nil {
			return 0, err
		}
		times = append(times, d)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// jaccard computes |A∩B| / |A∪B| over string sets.
func jaccard(a, b []string) float64 {
	as := map[string]bool{}
	for _, x := range a {
		as[x] = true
	}
	inter, union := 0, len(as)
	seen := map[string]bool{}
	for _, x := range b {
		if seen[x] {
			continue
		}
		seen[x] = true
		if as[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// kendallTau computes the rank correlation between two orderings of
// the same item set (items missing from either side are ignored).
func kendallTau(a, b []string) float64 {
	posB := map[string]int{}
	for i, x := range b {
		posB[x] = i
	}
	var common []int // positions in b, ordered by a
	for _, x := range a {
		if p, ok := posB[x]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else if common[i] > common[j] {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(n*(n-1)/2)
}
